"""terpd clients: asyncio and blocking, both pipelining-capable.

Two clients over the same wire protocol:

* :class:`TerpClient` — asyncio.  ``submit()`` fires a request without
  waiting (pipelining: the server answers in order per connection, so
  responses are matched FIFO and checked against the request id);
  ``call()`` is submit-and-await.
* :class:`SyncTerpClient` — a plain blocking socket, for threads,
  scripts, and load generators.  ``pipeline()`` sends a burst of
  request frames back-to-back before collecting the responses;
  ``batch()`` packs them into a single array frame instead.

Both surface the Table I API as methods (``create``/``open``/
``attach``/``detach``/``pmalloc``/``pfree``/``read``/``write``/
``psync``/``destroy``), translate error responses into
:class:`RemoteError`, and collect out-of-band ``forced-detach``
events into :attr:`events`.

Robustness (opt-in via the ``retry`` / ``breaker`` constructor
arguments; without them the clients behave exactly as before):

* a lost connection surfaces as :class:`ConnectionLost` — typed, so
  callers can tell "the server said no" from "the server went away";
* with a :class:`~repro.service.retry.RetryPolicy`, a lost connection
  triggers reconnect + session resume + replay of the *same request
  id* after a jittered exponential backoff.  The server's per-session
  replay cache makes the retry idempotent: a request that executed
  but whose response was lost is answered from the cache, never run
  twice.  Retryable error kinds (``Busy``, ``InjectedFault``) are
  retried in place on the live connection.
* with a :class:`~repro.service.retry.CircuitBreaker`, consecutive
  connection failures open the circuit and the client degrades to
  read-only operations until a probe succeeds.
"""

from __future__ import annotations

import asyncio
import collections
import os
import socket
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.errors import TerpError
from repro.pmo.object_id import Oid
from repro.service import protocol
from repro.service.protocol import WireError
from repro.service.retry import (
    READ_ONLY_OPS, RETRYABLE_KINDS, CircuitBreaker, CircuitOpenError,
    RetryPolicy)


class RemoteError(TerpError):
    """An error response from terpd; ``kind`` is the server-side
    exception class name (``PmoError``, ``TerpError``, ...)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_message = message


class ConnectionLost(RemoteError):
    """The server went away mid-conversation (EOF, reset, torn frame).

    Distinct from an error *response*: the server never answered, so
    the fate of any in-flight request is unknown — which is exactly
    what the retry machinery's idempotent replay resolves.
    """

    def __init__(self, message: str) -> None:
        super().__init__("ConnectionLost", message)


class SessionLost(RemoteError):
    """The session could not be resumed after a reconnect (it crashed
    server-side or its linger grace expired).  Raised only by clients
    constructed with ``strict_resume=True``; by default the client
    falls back to a fresh session and counts it in ``sessions_lost``."""

    def __init__(self, message: str) -> None:
        super().__init__("SessionLost", message)


class _ClientCore:
    """Response bookkeeping shared by both clients."""

    def __init__(self) -> None:
        self.session_id: Optional[int] = None
        self.entity_id: Optional[int] = None
        self.ew_budget_us: Optional[float] = None
        self.resume_token: str = ""
        #: out-of-band events (forced detaches) seen on any response.
        #: Delivery is at-least-once: a replayed response repeats the
        #: events that rode on the original.
        self.events: List[dict] = []
        #: successful session resumptions after a connection drop.
        self.resumes = 0
        #: reconnects where resume failed and a fresh session was opened.
        self.sessions_lost = 0
        self._next_id = 0
        #: the revision offered in ``hello``; ``TERP_PROTOCOL_VERSION=1``
        #: in the environment forces the legacy JSON-only wire.
        env = os.environ.get("TERP_PROTOCOL_VERSION")
        self._want_version = int(env) if env else \
            protocol.PROTOCOL_VERSION
        #: the revision actually negotiated (v1 until hello says more).
        self.protocol_version = protocol.PROTOCOL_V1

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @property
    def forced_detaches(self) -> int:
        return sum(1 for e in self.events
                   if e.get("event") == "forced-detach")

    def take_result(self, response: Any, expect_id: int) -> Any:
        if response is None:
            raise ConnectionLost("server closed the connection")
        if not isinstance(response, dict):
            raise WireError(f"response is not an object: {response!r}")
        if response.get("id") != expect_id:
            raise WireError(
                f"response id {response.get('id')!r} does not match "
                f"request id {expect_id} (pipelining desync)")
        self.events.extend(response.get("events") or [])
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(str(error.get("kind", "TerpError")),
                              str(error.get("message", "unknown")))
        return response.get("result")

    def note_hello(self, result: Dict) -> None:
        self.session_id = result["session"]
        self.entity_id = result["entity"]
        self.ew_budget_us = result["ew_budget_us"]
        self.resume_token = str(result.get("token", ""))
        self.protocol_version = int(
            result.get("version", protocol.PROTOCOL_V1))

    def _prep_args(self, args: Dict[str, Any]
                   ) -> Tuple[Dict[str, Any], List[bytes]]:
        """Encode a request's binary payload for the negotiated wire.

        ``bytes`` under ``"data"`` ride the v2 sidecar (returned as
        chunks) or get base64'd for a v1 connection.  The caller's
        dict is never mutated, so a retry after reconnect re-preps the
        same request for whatever version the new connection speaks.
        """
        data = args.get("data")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            return args, []
        data = bytes(data)
        if self.protocol_version >= 2:
            return dict(args, data={"bin": len(data)}), [data]
        return dict(args, data=protocol.encode_bytes(data)), []

    def _version_rejected(self, exc: "RemoteError") -> bool:
        """Did the server refuse our ``hello`` version offer?"""
        return not isinstance(exc, ConnectionLost) and \
            self._want_version > protocol.PROTOCOL_V1 and \
            "version" in exc.remote_message


class SyncTerpClient(_ClientCore):
    """Blocking terpd client over TCP or a Unix socket."""

    def __init__(self, *, host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 user: str = "root",
                 ew_budget_us: Optional[float] = None,
                 timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 strict_resume: bool = False) -> None:
        super().__init__()
        if (port is None) == (unix_path is None):
            raise TerpError("give exactly one of port / unix_path")
        self._sock: Optional[socket.socket] = None
        self._host, self._port, self._unix = host, port, unix_path
        self._user, self._budget = user, ew_budget_us
        self._timeout = timeout
        self._retry = retry
        self._breaker = breaker
        self._strict_resume = strict_resume

    # -- connection lifecycle ----------------------------------------------

    def connect(self) -> "SyncTerpClient":
        self._open_socket()
        self.note_hello(self._hello(self._hello_args()))
        return self

    def _hello(self, args: Dict[str, Any]) -> Any:
        """Say hello, negotiating the protocol version.

        A legacy (v1-only) server rejects the v2 offer outright with a
        "version unsupported" error; the client downgrades its offer
        and re-hellos, after which everything — including this whole
        session's reads and writes — stays on the v1 JSON wire.
        """
        try:
            return self._raw_call(
                "hello", dict(args, version=self._want_version))
        except RemoteError as exc:
            if not self._version_rejected(exc):
                raise
            self._want_version = protocol.PROTOCOL_V1
            return self._raw_call(
                "hello", dict(args, version=protocol.PROTOCOL_V1))

    def close(self) -> None:
        self._drop_socket()

    def __enter__(self) -> "SyncTerpClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _hello_args(self) -> Dict[str, Any]:
        args: Dict[str, Any] = {"user": self._user}
        if self._budget is not None:
            args["ew_budget_us"] = self._budget
        return args

    def _open_socket(self) -> None:
        if self._unix is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._unix)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            finally:
                self._sock = None

    def _reconnect(self) -> None:
        """Reopen the transport and restore the session.

        Resume first (same session id, entity id, and replay cache);
        if the server no longer knows the session, fall back to a
        fresh one — unless ``strict_resume`` asked for a typed
        :class:`SessionLost` instead.
        """
        self._drop_socket()
        self._open_socket()
        args = self._hello_args()
        if self.session_id is not None and self.resume_token:
            try:
                self.note_hello(self._hello(
                    dict(args, resume=self.session_id,
                         token=self.resume_token)))
                self.resumes += 1
                return
            except ConnectionLost:
                raise
            except RemoteError as exc:
                self.sessions_lost += 1
                if self._strict_resume:
                    raise SessionLost(
                        f"session {self.session_id} not resumable: "
                        f"{exc.remote_message}") from exc
        self.note_hello(self._hello(args))

    def _try_reconnect(self) -> None:
        """Best-effort reconnect between retry attempts: a failure
        here just leaves the next attempt to fail (and count)."""
        try:
            self._reconnect()
        except SessionLost:
            raise
        except (OSError, TerpError):
            self._drop_socket()

    # -- request plumbing -------------------------------------------------

    def _send(self, payload: Any,
              sidecar: Optional[bytes] = None) -> None:
        if self._sock is None:
            raise ConnectionLost("not connected")
        try:
            protocol.send_frame(self._sock, payload, sidecar)
        except OSError as exc:
            self._drop_socket()
            raise ConnectionLost(f"send failed: {exc}") from exc

    def _recv(self) -> Any:
        if self._sock is None:
            raise ConnectionLost("not connected")
        try:
            got = protocol.recv_frame_ex(self._sock)
        except OSError as exc:
            self._drop_socket()
            raise ConnectionLost(f"recv failed: {exc}") from exc
        except WireError as exc:
            # A torn frame (e.g. the server died mid-write) is a
            # connection failure, not a protocol dispute.
            self._drop_socket()
            raise ConnectionLost(str(exc)) from exc
        if got is None:
            return None
        payload, sidecar = got
        if sidecar:
            try:
                protocol.absorb_sidecar(payload, sidecar)
            except WireError as exc:
                self._drop_socket()
                raise ConnectionLost(str(exc)) from exc
        return payload

    def _raw_call(self, op: str, args: Dict[str, Any]) -> Any:
        """One round-trip with no retry/breaker involvement."""
        rid = self.next_id()
        self._send(protocol.request(rid, op, args))
        return self.take_result(self._recv(), rid)

    def _check_breaker(self, op: str, *, readonly: bool) -> None:
        if self._breaker is not None and \
                not self._breaker.allow(readonly=readonly):
            raise CircuitOpenError(
                f"circuit open: refusing {op!r}; only read-only "
                "operations pass until the server recovers")

    def call(self, op: str, **args: Any) -> Any:
        """One request, one response — with retry if configured."""
        return self._call(self.next_id(), op, args)

    def _call(self, rid: int, op: str, args: Dict[str, Any]) -> Any:
        attempt = 0
        while True:
            self._check_breaker(op, readonly=op in READ_ONLY_OPS)
            try:
                prepped, chunks = self._prep_args(args)
                self._send(protocol.request(rid, op, prepped),
                           b"".join(chunks) if chunks else None)
                result = self.take_result(self._recv(), rid)
            except ConnectionLost:
                self._drop_socket()
                if self._breaker is not None:
                    self._breaker.record_failure()
                if self._retry is None or \
                        attempt >= self._retry.max_retries:
                    raise
                self._retry.backoff(attempt)
                attempt += 1
                # Same rid on the restored session: if the lost
                # request executed, the replay cache answers it.
                self._try_reconnect()
                continue
            except RemoteError as exc:
                # An error *response*: the connection round-tripped.
                # Busy is the exception — a half-open probe answered
                # Busy must re-open the circuit, not close it (the
                # server is shedding load, not serving).
                if self._breaker is not None:
                    if exc.kind == "Busy":
                        self._breaker.record_busy()
                    else:
                        self._breaker.record_success()
                if self._retry is not None and \
                        exc.kind in RETRYABLE_KINDS and \
                        attempt < self._retry.max_retries:
                    self._retry.backoff(attempt)
                    attempt += 1
                    continue
                raise
            if self._breaker is not None:
                self._breaker.record_success()
            return result

    def pipeline(self, requests: List[Tuple[str, Dict]]) -> List[Any]:
        """Send every request frame before reading any response.

        Returns results in request order; a failed request raises only
        when its slot is reached, after all frames were sent — matching
        how a pipelined server consumes them.  With retry configured, a
        connection lost mid-pipeline re-sends only the *unacknowledged*
        request ids after reconnect + resume; acknowledged results are
        kept and already-executed stragglers come from the replay
        cache.
        """
        pending = [(self.next_id(), op, args) for op, args in requests]
        readonly = all(op in READ_ONLY_OPS for _, op, _ in pending)
        results: List[Any] = []
        attempt = 0
        while True:
            self._check_breaker(pending[0][1] if pending else "ping",
                                readonly=readonly)
            try:
                for rid, op, args in pending[len(results):]:
                    prepped, chunks = self._prep_args(args)
                    self._send(protocol.request(rid, op, prepped),
                               b"".join(chunks) if chunks else None)
                while len(results) < len(pending):
                    rid = pending[len(results)][0]
                    results.append(self.take_result(self._recv(), rid))
                if self._breaker is not None:
                    self._breaker.record_success()
                return results
            except ConnectionLost:
                self._drop_socket()
                if self._breaker is not None:
                    self._breaker.record_failure()
                if self._retry is None or \
                        attempt >= self._retry.max_retries:
                    raise
                self._retry.backoff(attempt)
                attempt += 1
                self._try_reconnect()

    def batch(self, requests: List[Tuple[str, Dict]]) -> List[Any]:
        """Pack many requests into one frame (one syscall each way).

        On a v2 connection the items' binary payloads travel as one
        combined sidecar, concatenated in item order.  The frame is
        re-packed per attempt: a reconnect may have renegotiated the
        protocol version.
        """
        items = [(self.next_id(), op, args) for op, args in requests]
        rids = [rid for rid, _, _ in items]
        readonly = all(op in READ_ONLY_OPS for op, _ in requests)
        attempt = 0
        while True:
            self._check_breaker(requests[0][0] if requests else "ping",
                                readonly=readonly)
            try:
                packed = []
                chunks: List[bytes] = []
                for rid, op, args in items:
                    prepped, ch = self._prep_args(args)
                    chunks.extend(ch)
                    packed.append(protocol.request(rid, op, prepped))
                self._send(packed,
                           b"".join(chunks) if chunks else None)
                responses = self._recv()
                if responses is None:
                    raise ConnectionLost(
                        "server closed before the batch response")
                if not isinstance(responses, list) or \
                        len(responses) != len(rids):
                    raise WireError("batch response shape mismatch")
                results = [self.take_result(response, rid)
                           for response, rid in zip(responses, rids)]
                if self._breaker is not None:
                    self._breaker.record_success()
                return results
            except ConnectionLost:
                self._drop_socket()
                if self._breaker is not None:
                    self._breaker.record_failure()
                if self._retry is None or \
                        attempt >= self._retry.max_retries:
                    raise
                self._retry.backoff(attempt)
                attempt += 1
                self._try_reconnect()

    # -- Table I convenience ----------------------------------------------

    def create(self, name: str, size: int, mode: int = 0o600) -> Dict:
        return self.call("create", name=name, size=size, mode=mode)

    def open(self, name: str, access: str = "rw") -> Dict:
        return self.call("open", name=name, access=access)

    def close_pmo(self, name: str) -> Dict:
        return self.call("close", name=name)

    def destroy(self, name: str) -> Dict:
        return self.call("destroy", name=name)

    def attach(self, name: str, access: str = "rw") -> Dict:
        return self.call("attach", name=name, access=access)

    def detach(self, name: str) -> Dict:
        return self.call("detach", name=name)

    def pmalloc(self, name: str, size: int) -> Oid:
        return Oid.unpack(self.call("pmalloc", name=name,
                                    size=size)["oid"])

    def pfree(self, oid: Oid) -> None:
        self.call("pfree", oid=oid.pack())

    def read(self, oid: Oid, n: int) -> bytes:
        data = self.call("read", oid=oid.pack(), n=n)["data"]
        return data if isinstance(data, bytes) else \
            protocol.decode_bytes(data)

    def write(self, oid: Oid, data: bytes) -> int:
        return self.call("write", oid=oid.pack(),
                         data=bytes(data))["n"]

    def read_u64(self, oid: Oid) -> int:
        return self.call("read_u64", oid=oid.pack())["value"]

    def write_u64(self, oid: Oid, value: int) -> None:
        self.call("write_u64", oid=oid.pack(), value=value)

    def psync(self, name: str) -> int:
        return self.call("psync", name=name)["flushed"]

    def tx_begin(self, name: str) -> int:
        return self.call("tx_begin", name=name)["tx"]

    def tx_abort(self, name: str) -> None:
        self.call("tx_abort", name=name)

    def metrics(self) -> Dict:
        return self.call("metrics")

    def trace(self, limit: int = 100, *,
              pmo: Optional[str] = None,
              kind: Optional[str] = None,
              name: Optional[str] = None) -> Dict:
        """Recent spans + exposure audit events, optionally filtered."""
        args: Dict[str, Any] = {"limit": limit}
        if pmo is not None:
            args["pmo"] = pmo
        if kind is not None:
            args["kind"] = kind
        if name is not None:
            args["name"] = name
        return self.call("trace", **args)

    def prometheus(self) -> str:
        """The daemon's registry in Prometheus text exposition."""
        return self.call("prometheus")["text"]

    def ping(self) -> Dict:
        return self.call("ping")

    def goodbye(self) -> Dict:
        return self.call("goodbye")


class TerpClient(_ClientCore):
    """Asyncio terpd client with FIFO-pipelined requests."""

    def __init__(self, *, host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 user: str = "root",
                 ew_budget_us: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 strict_resume: bool = False) -> None:
        super().__init__()
        if (port is None) == (unix_path is None):
            raise TerpError("give exactly one of port / unix_path")
        self._host, self._port, self._unix = host, port, unix_path
        self._user, self._budget = user, ew_budget_us
        self._retry = retry
        self._breaker = breaker
        self._strict_resume = strict_resume
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Deque[Tuple[int, asyncio.Future]] = \
            collections.deque()
        self._pump: Optional[asyncio.Task] = None

    def _hello_args(self) -> Dict[str, Any]:
        args: Dict[str, Any] = {"user": self._user}
        if self._budget is not None:
            args["ew_budget_us"] = self._budget
        return args

    async def connect(self) -> "TerpClient":
        await self._open_transport()
        self.note_hello(await self._hello(self._hello_args()))
        return self

    async def _hello(self, args: Dict[str, Any]) -> Any:
        """``hello`` with version negotiation + v1 fallback (see
        :meth:`SyncTerpClient._hello`)."""
        try:
            return await (await self._submit(
                self.next_id(), "hello",
                dict(args, version=self._want_version)))
        except RemoteError as exc:
            if not self._version_rejected(exc):
                raise
            self._want_version = protocol.PROTOCOL_V1
            return await (await self._submit(
                self.next_id(), "hello",
                dict(args, version=protocol.PROTOCOL_V1)))

    async def _open_transport(self) -> None:
        if self._unix is not None:
            self._reader, self._writer = \
                await asyncio.open_unix_connection(self._unix)
        else:
            self._reader, self._writer = \
                await asyncio.open_connection(self._host, self._port)
        self._pump = asyncio.create_task(self._pump_responses())

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None

    async def _reconnect(self) -> None:
        """Transport back up, then resume (or replace) the session."""
        await self.close()
        await self._open_transport()
        args = self._hello_args()
        if self.session_id is not None and self.resume_token:
            try:
                result = await self._hello(
                    dict(args, resume=self.session_id,
                         token=self.resume_token))
                self.note_hello(result)
                self.resumes += 1
                return
            except ConnectionLost:
                raise
            except RemoteError as exc:
                self.sessions_lost += 1
                if self._strict_resume:
                    raise SessionLost(
                        f"session {self.session_id} not resumable: "
                        f"{exc.remote_message}") from exc
        self.note_hello(await self._hello(args))

    async def __aenter__(self) -> "TerpClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _pump_responses(self) -> None:
        """Match response frames to pending futures, FIFO."""
        try:
            while True:
                got = await protocol.read_frame_ex(self._reader)
                if got is None:
                    raise ConnectionLost("server closed the connection")
                response, sidecar = got
                if sidecar:
                    protocol.absorb_sidecar(response, sidecar)
                if not self._pending:
                    raise WireError("unsolicited response frame")
                rid, future = self._pending.popleft()
                if not future.done():
                    try:
                        future.set_result(
                            self.take_result(response, rid))
                    except (RemoteError, WireError) as exc:
                        future.set_exception(exc)
        except (WireError, ConnectionResetError, ConnectionLost) as exc:
            while self._pending:
                _, future = self._pending.popleft()
                if not future.done():
                    future.set_exception(ConnectionLost(str(exc)))
        except asyncio.CancelledError:
            while self._pending:
                _, future = self._pending.popleft()
                if not future.done():
                    future.set_exception(
                        ConnectionLost("client closed"))
            raise

    async def _submit(self, rid: int, op: str,
                      args: Dict[str, Any]) -> "asyncio.Future":
        if self._writer is None:
            raise ConnectionLost("not connected")
        future = asyncio.get_running_loop().create_future()
        self._pending.append((rid, future))
        prepped, chunks = self._prep_args(args)
        try:
            await protocol.write_frame(
                self._writer, protocol.request(rid, op, prepped),
                b"".join(chunks) if chunks else None)
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise ConnectionLost(f"send failed: {exc}") from exc
        return future

    async def submit(self, op: str, **args: Any) -> "asyncio.Future":
        """Fire a request; returns the future of its result."""
        return await self._submit(self.next_id(), op, args)

    async def call(self, op: str, **args: Any) -> Any:
        rid = self.next_id()
        attempt = 0
        while True:
            if self._breaker is not None and not self._breaker.allow(
                    readonly=op in READ_ONLY_OPS):
                raise CircuitOpenError(
                    f"circuit open: refusing {op!r}; only read-only "
                    "operations pass until the server recovers")
            try:
                result = await (await self._submit(rid, op, args))
            except ConnectionLost:
                if self._breaker is not None:
                    self._breaker.record_failure()
                if self._retry is None or \
                        attempt >= self._retry.max_retries:
                    raise
                await asyncio.sleep(self._retry.delay_for(attempt))
                attempt += 1
                try:
                    await self._reconnect()
                except SessionLost:
                    raise
                except (OSError, TerpError):
                    pass
                continue
            except RemoteError as exc:
                if self._breaker is not None:
                    # Busy re-opens a half-open circuit instead of
                    # closing it (see SyncTerpClient._call).
                    if exc.kind == "Busy":
                        self._breaker.record_busy()
                    else:
                        self._breaker.record_success()
                if self._retry is not None and \
                        exc.kind in RETRYABLE_KINDS and \
                        attempt < self._retry.max_retries:
                    await asyncio.sleep(self._retry.delay_for(attempt))
                    attempt += 1
                    continue
                raise
            if self._breaker is not None:
                self._breaker.record_success()
            return result

    # -- Table I convenience ----------------------------------------------

    async def attach(self, name: str, access: str = "rw") -> Dict:
        return await self.call("attach", name=name, access=access)

    async def detach(self, name: str) -> Dict:
        return await self.call("detach", name=name)

    async def create(self, name: str, size: int,
                     mode: int = 0o600) -> Dict:
        return await self.call("create", name=name, size=size,
                               mode=mode)

    async def open(self, name: str, access: str = "rw") -> Dict:
        return await self.call("open", name=name, access=access)

    async def pmalloc(self, name: str, size: int) -> Oid:
        result = await self.call("pmalloc", name=name, size=size)
        return Oid.unpack(result["oid"])

    async def pfree(self, oid: Oid) -> None:
        await self.call("pfree", oid=oid.pack())

    async def read(self, oid: Oid, n: int) -> bytes:
        data = (await self.call("read", oid=oid.pack(), n=n))["data"]
        return data if isinstance(data, bytes) else \
            protocol.decode_bytes(data)

    async def write(self, oid: Oid, data: bytes) -> int:
        result = await self.call("write", oid=oid.pack(),
                                 data=bytes(data))
        return result["n"]

    async def psync(self, name: str) -> int:
        return (await self.call("psync", name=name))["flushed"]

    async def destroy(self, name: str) -> Dict:
        return await self.call("destroy", name=name)

    async def metrics(self) -> Dict:
        return await self.call("metrics")

    async def trace(self, limit: int = 100) -> Dict:
        return await self.call("trace", limit=limit)

    async def prometheus(self) -> str:
        return (await self.call("prometheus"))["text"]

    async def goodbye(self) -> Dict:
        return await self.call("goodbye")
