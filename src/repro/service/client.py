"""terpd clients: asyncio and blocking, both pipelining-capable.

Two clients over the same wire protocol:

* :class:`TerpClient` — asyncio.  ``submit()`` fires a request without
  waiting (pipelining: the server answers in order per connection, so
  responses are matched FIFO and checked against the request id);
  ``call()`` is submit-and-await.
* :class:`SyncTerpClient` — a plain blocking socket, for threads,
  scripts, and load generators.  ``pipeline()`` sends a burst of
  request frames back-to-back before collecting the responses;
  ``batch()`` packs them into a single array frame instead.

Both surface the Table I API as methods (``create``/``open``/
``attach``/``detach``/``pmalloc``/``pfree``/``read``/``write``/
``psync``/``destroy``), translate error responses into
:class:`RemoteError`, and collect out-of-band ``forced-detach``
events into :attr:`events`.
"""

from __future__ import annotations

import asyncio
import collections
import socket
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.errors import TerpError
from repro.pmo.object_id import Oid
from repro.service import protocol
from repro.service.protocol import WireError


class RemoteError(TerpError):
    """An error response from terpd; ``kind`` is the server-side
    exception class name (``PmoError``, ``TerpError``, ...)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_message = message


class _ClientCore:
    """Response bookkeeping shared by both clients."""

    def __init__(self) -> None:
        self.session_id: Optional[int] = None
        self.entity_id: Optional[int] = None
        self.ew_budget_us: Optional[float] = None
        #: out-of-band events (forced detaches) seen on any response.
        self.events: List[dict] = []
        self._next_id = 0

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @property
    def forced_detaches(self) -> int:
        return sum(1 for e in self.events
                   if e.get("event") == "forced-detach")

    def take_result(self, response: Any, expect_id: int) -> Any:
        if not isinstance(response, dict):
            raise WireError(f"response is not an object: {response!r}")
        if response.get("id") != expect_id:
            raise WireError(
                f"response id {response.get('id')!r} does not match "
                f"request id {expect_id} (pipelining desync)")
        self.events.extend(response.get("events") or [])
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(str(error.get("kind", "TerpError")),
                              str(error.get("message", "unknown")))
        return response.get("result")

    def note_hello(self, result: Dict) -> None:
        self.session_id = result["session"]
        self.entity_id = result["entity"]
        self.ew_budget_us = result["ew_budget_us"]


class SyncTerpClient(_ClientCore):
    """Blocking terpd client over TCP or a Unix socket."""

    def __init__(self, *, host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 user: str = "root",
                 ew_budget_us: Optional[float] = None,
                 timeout: float = 30.0) -> None:
        super().__init__()
        if (port is None) == (unix_path is None):
            raise TerpError("give exactly one of port / unix_path")
        self._sock: Optional[socket.socket] = None
        self._host, self._port, self._unix = host, port, unix_path
        self._user, self._budget = user, ew_budget_us
        self._timeout = timeout

    def connect(self) -> "SyncTerpClient":
        if self._unix is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._unix)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        args: Dict[str, Any] = {"user": self._user}
        if self._budget is not None:
            args["ew_budget_us"] = self._budget
        self.note_hello(self.call("hello", **args))
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "SyncTerpClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing -------------------------------------------------

    def call(self, op: str, **args: Any) -> Any:
        """One request, one response."""
        rid = self.next_id()
        protocol.send_frame(self._sock, protocol.request(rid, op, args))
        response = protocol.recv_frame(self._sock)
        if response is None:
            raise WireError("server closed the connection")
        return self.take_result(response, rid)

    def pipeline(self, requests: List[Tuple[str, Dict]]) -> List[Any]:
        """Send every request frame before reading any response.

        Returns results in request order; a failed request raises only
        when its slot is reached, after all frames were sent — matching
        how a pipelined server consumes them.
        """
        rids = []
        for op, args in requests:
            rid = self.next_id()
            rids.append(rid)
            protocol.send_frame(self._sock,
                                protocol.request(rid, op, args))
        results = []
        for rid in rids:
            response = protocol.recv_frame(self._sock)
            if response is None:
                raise WireError("server closed mid-pipeline")
            results.append(self.take_result(response, rid))
        return results

    def batch(self, requests: List[Tuple[str, Dict]]) -> List[Any]:
        """Pack many requests into one frame (one syscall each way)."""
        packed = []
        rids = []
        for op, args in requests:
            rid = self.next_id()
            rids.append(rid)
            packed.append(protocol.request(rid, op, args))
        protocol.send_frame(self._sock, packed)
        responses = protocol.recv_frame(self._sock)
        if not isinstance(responses, list) or \
                len(responses) != len(rids):
            raise WireError("batch response shape mismatch")
        return [self.take_result(response, rid)
                for response, rid in zip(responses, rids)]

    # -- Table I convenience ----------------------------------------------

    def create(self, name: str, size: int, mode: int = 0o600) -> Dict:
        return self.call("create", name=name, size=size, mode=mode)

    def open(self, name: str, access: str = "rw") -> Dict:
        return self.call("open", name=name, access=access)

    def close_pmo(self, name: str) -> Dict:
        return self.call("close", name=name)

    def destroy(self, name: str) -> Dict:
        return self.call("destroy", name=name)

    def attach(self, name: str, access: str = "rw") -> Dict:
        return self.call("attach", name=name, access=access)

    def detach(self, name: str) -> Dict:
        return self.call("detach", name=name)

    def pmalloc(self, name: str, size: int) -> Oid:
        return Oid.unpack(self.call("pmalloc", name=name,
                                    size=size)["oid"])

    def pfree(self, oid: Oid) -> None:
        self.call("pfree", oid=oid.pack())

    def read(self, oid: Oid, n: int) -> bytes:
        return protocol.decode_bytes(
            self.call("read", oid=oid.pack(), n=n)["data"])

    def write(self, oid: Oid, data: bytes) -> int:
        return self.call("write", oid=oid.pack(),
                         data=protocol.encode_bytes(data))["n"]

    def read_u64(self, oid: Oid) -> int:
        return self.call("read_u64", oid=oid.pack())["value"]

    def write_u64(self, oid: Oid, value: int) -> None:
        self.call("write_u64", oid=oid.pack(), value=value)

    def psync(self, name: str) -> int:
        return self.call("psync", name=name)["flushed"]

    def tx_begin(self, name: str) -> int:
        return self.call("tx_begin", name=name)["tx"]

    def tx_abort(self, name: str) -> None:
        self.call("tx_abort", name=name)

    def metrics(self) -> Dict:
        return self.call("metrics")

    def trace(self, limit: int = 100, *,
              pmo: Optional[str] = None,
              kind: Optional[str] = None,
              name: Optional[str] = None) -> Dict:
        """Recent spans + exposure audit events, optionally filtered."""
        args: Dict[str, Any] = {"limit": limit}
        if pmo is not None:
            args["pmo"] = pmo
        if kind is not None:
            args["kind"] = kind
        if name is not None:
            args["name"] = name
        return self.call("trace", **args)

    def prometheus(self) -> str:
        """The daemon's registry in Prometheus text exposition."""
        return self.call("prometheus")["text"]

    def ping(self) -> Dict:
        return self.call("ping")

    def goodbye(self) -> Dict:
        return self.call("goodbye")


class TerpClient(_ClientCore):
    """Asyncio terpd client with FIFO-pipelined requests."""

    def __init__(self, *, host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 user: str = "root",
                 ew_budget_us: Optional[float] = None) -> None:
        super().__init__()
        if (port is None) == (unix_path is None):
            raise TerpError("give exactly one of port / unix_path")
        self._host, self._port, self._unix = host, port, unix_path
        self._user, self._budget = user, ew_budget_us
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Deque[Tuple[int, asyncio.Future]] = \
            collections.deque()
        self._pump: Optional[asyncio.Task] = None

    async def connect(self) -> "TerpClient":
        if self._unix is not None:
            self._reader, self._writer = \
                await asyncio.open_unix_connection(self._unix)
        else:
            self._reader, self._writer = \
                await asyncio.open_connection(self._host, self._port)
        self._pump = asyncio.create_task(self._pump_responses())
        args: Dict[str, Any] = {"user": self._user}
        if self._budget is not None:
            args["ew_budget_us"] = self._budget
        self.note_hello(await self.call("hello", **args))
        return self

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None

    async def __aenter__(self) -> "TerpClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _pump_responses(self) -> None:
        """Match response frames to pending futures, FIFO."""
        try:
            while True:
                response = await protocol.read_frame(self._reader)
                if response is None:
                    raise WireError("server closed the connection")
                if not self._pending:
                    raise WireError("unsolicited response frame")
                rid, future = self._pending.popleft()
                if not future.done():
                    try:
                        future.set_result(
                            self.take_result(response, rid))
                    except (RemoteError, WireError) as exc:
                        future.set_exception(exc)
        except (WireError, ConnectionResetError) as exc:
            while self._pending:
                _, future = self._pending.popleft()
                if not future.done():
                    future.set_exception(WireError(str(exc)))
        except asyncio.CancelledError:
            while self._pending:
                _, future = self._pending.popleft()
                if not future.done():
                    future.set_exception(WireError("client closed"))
            raise

    async def submit(self, op: str, **args: Any) -> "asyncio.Future":
        """Fire a request; returns the future of its result."""
        rid = self.next_id()
        future = asyncio.get_running_loop().create_future()
        self._pending.append((rid, future))
        await protocol.write_frame(self._writer,
                                   protocol.request(rid, op, args))
        return future

    async def call(self, op: str, **args: Any) -> Any:
        return await (await self.submit(op, **args))

    # -- Table I convenience ----------------------------------------------

    async def attach(self, name: str, access: str = "rw") -> Dict:
        return await self.call("attach", name=name, access=access)

    async def detach(self, name: str) -> Dict:
        return await self.call("detach", name=name)

    async def create(self, name: str, size: int,
                     mode: int = 0o600) -> Dict:
        return await self.call("create", name=name, size=size,
                               mode=mode)

    async def open(self, name: str, access: str = "rw") -> Dict:
        return await self.call("open", name=name, access=access)

    async def pmalloc(self, name: str, size: int) -> Oid:
        result = await self.call("pmalloc", name=name, size=size)
        return Oid.unpack(result["oid"])

    async def pfree(self, oid: Oid) -> None:
        await self.call("pfree", oid=oid.pack())

    async def read(self, oid: Oid, n: int) -> bytes:
        result = await self.call("read", oid=oid.pack(), n=n)
        return protocol.decode_bytes(result["data"])

    async def write(self, oid: Oid, data: bytes) -> int:
        result = await self.call("write", oid=oid.pack(),
                                 data=protocol.encode_bytes(data))
        return result["n"]

    async def psync(self, name: str) -> int:
        return (await self.call("psync", name=name))["flushed"]

    async def destroy(self, name: str) -> Dict:
        return await self.call("destroy", name=name)

    async def metrics(self) -> Dict:
        return await self.call("metrics")

    async def trace(self, limit: int = 100) -> Dict:
        return await self.call("trace", limit=limit)

    async def prometheus(self) -> str:
        return (await self.call("prometheus"))["text"]

    async def goodbye(self) -> Dict:
        return await self.call("goodbye")
