"""Client-side robustness policies: backoff, retry, circuit breaking.

Two cooperating pieces, both deterministic under injection:

* :class:`RetryPolicy` — exponential backoff with seeded jitter.  The
  delay sequence is a pure function of the policy parameters and the
  seed, so tests (and replays of chaos schedules) see identical
  timing decisions; the ``sleep`` callable is injectable so tests run
  at full speed.
* :class:`CircuitBreaker` — the flapping-server guard.  Consecutive
  connection-level failures open the circuit; while open, mutating
  operations fail fast with :class:`CircuitOpenError` and only
  read-only operations pass through (the degraded read-only mode).
  After ``reset_timeout_s`` the breaker goes half-open and admits one
  probe; the probe's outcome closes or re-opens it.  The clock is
  injectable for deterministic transition tests.

Neither class knows about sockets or the wire protocol — the clients
in :mod:`repro.service.client` drive them.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional

from repro.core.errors import TerpError

__all__ = ["RetryPolicy", "CircuitBreaker", "CircuitOpenError",
           "RETRYABLE_KINDS", "READ_ONLY_OPS"]

#: Server error kinds a client may transparently retry: transient
#: resource exhaustion and injected transient faults.  Application
#: errors (PmoError, permission denials) are never retried.
RETRYABLE_KINDS: FrozenSet[str] = frozenset({"Busy", "InjectedFault"})

#: Operations safe to issue while the circuit is open (degraded
#: read-only mode): they observe state but never mutate it.
READ_ONLY_OPS: FrozenSet[str] = frozenset({
    "ping", "metrics", "trace", "prometheus", "read", "read_u64"})


class CircuitOpenError(TerpError):
    """The circuit breaker is open; the operation was not attempted."""


@dataclass
class RetryPolicy:
    """Exponential backoff with seeded jitter.

    ``delay_for(attempt)`` for attempt ``0, 1, 2, ...`` is
    ``min(max_delay_s, base_delay_s * multiplier**attempt)``, scaled
    into ``[(1 - jitter) * d, d]`` by the seeded RNG.  With
    ``seed=None`` the RNG is OS-seeded (production); give a seed for
    reproducible sequences.
    """

    max_retries: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.050
    jitter: float = 0.5
    seed: Optional[int] = None
    sleep: Callable[[float], None] = time.sleep
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise TerpError("max_retries must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise TerpError("jitter must be within [0, 1]")
        self._rng = random.Random(self.seed)

    def delay_for(self, attempt: int) -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        ceiling = min(self.max_delay_s,
                      self.base_delay_s * self.multiplier ** attempt)
        if self.jitter == 0.0:
            return ceiling
        return ceiling * (1.0 - self.jitter * self._rng.random())

    def backoff(self, attempt: int) -> float:
        """Sleep for (and return) the attempt's backoff delay."""
        delay = self.delay_for(attempt)
        self.sleep(delay)
        return delay

    def sequence(self, n: Optional[int] = None) -> List[float]:
        """The first ``n`` delays (default ``max_retries``) — what a
        full retry run would sleep, for tests and capacity math."""
        count = self.max_retries if n is None else n
        return [self.delay_for(i) for i in range(count)]


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe.

    State answers one question per request: *may this operation hit
    the wire right now?*  Only connection-level failures count toward
    opening — an application error from a healthy server is a
    successful round-trip as far as the breaker is concerned (the
    caller records success for those).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout_s: float = 0.250,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold <= 0:
            raise TerpError("failure_threshold must be positive")
        if reset_timeout_s <= 0:
            raise TerpError("reset_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.opens = 0          # lifetime open transitions (metrics)

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if self._state == self.OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout_s:
            self._state = self.HALF_OPEN
            self._probing = False

    def allow(self, *, readonly: bool = False) -> bool:
        """May an operation be attempted right now?

        Open: only read-only operations pass (degraded mode).
        Half-open: exactly one probe passes (read-only ops ride along
        freely — they cannot close a window they never opened).
        """
        self._maybe_half_open()
        if self._state == self.CLOSED:
            return True
        if readonly:
            return True
        if self._state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._state = self.CLOSED
        self._failures = 0
        self._probing = False

    def record_busy(self) -> None:
        """The server answered ``Busy``: the round trip worked, but
        the server is shedding load.

        A half-open probe answered ``Busy`` must NOT close the
        circuit — the server is reachable yet still refusing work, so
        the breaker re-opens for another full ``reset_timeout_s``.
        Crucially it re-opens *without* counting toward the closed-
        state failure threshold: ``Busy`` is retried in place by the
        caller, and double-counting it both here and there would let
        one overloaded burst walk a healthy connection to OPEN.  In
        the closed state a ``Busy`` clears the consecutive-failure
        count (the connection is demonstrably alive) and nothing more.
        """
        self._maybe_half_open()
        if self._state == self.HALF_OPEN:
            self._open()
            return
        self._failures = 0

    def record_failure(self) -> None:
        self._maybe_half_open()
        if self._state == self.HALF_OPEN:
            self._open()
            return
        self._failures += 1
        if self._state == self.CLOSED and \
                self._failures >= self.failure_threshold:
            self._open()

    def _open(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probing = False
        self.opens += 1
