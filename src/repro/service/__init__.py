"""terpd — the multi-tenant PMO service layer.

The reproduction's core is a single-process library; this package
turns it into a daemon.  ``terpd`` serves the full Table I API
(`PMO_create`/`attach`/`detach`/`pmalloc`/`pfree`/`read`/`write`/
`psync`/`destroy`) over a length-prefixed JSON protocol on TCP or Unix
sockets, multiplexing many client *sessions* onto one
:class:`~repro.pmo.api.PmoLibrary`.  Each session is mapped to a TERP
entity, so the EW-conscious semantics, the permission matrix, and the
arch engine's window combining are enforced *across* clients — and a
background sweeper force-detaches any session whose exposure budget
elapses, including clients that crash or disconnect mid-attach.

Modules:

``protocol``   the wire format (framing, requests, responses, errors)
``sessions``   session registry and session -> entity mapping
``metrics``    per-session and global series, registry-backed
``server``     the asyncio daemon (``TerpService``) and thread harness
``client``     asyncio and blocking clients with pipelining support

Observability lives in :mod:`repro.obs`: the daemon's counters and
latency histograms are instruments in a
:class:`~repro.obs.registry.MetricsRegistry` (JSON dump via
``--metrics-dump``, Prometheus text via the ``prometheus`` op), every
request and sweep is traced, and the exposure-window audit timeline
(``trace`` op) records who held which PMO for how long.

Run the daemon with ``python -m repro.service``.
"""

from repro.service.client import RemoteError, SyncTerpClient, TerpClient
from repro.service.metrics import LatencyRecorder, ServiceMetrics
from repro.service.protocol import (
    MAX_FRAME_BYTES, WireError, decode_frame, encode_frame)
from repro.service.server import ServiceThread, TerpService
from repro.service.sessions import Session, SessionRegistry

__all__ = [
    "LatencyRecorder",
    "MAX_FRAME_BYTES",
    "RemoteError",
    "ServiceMetrics",
    "ServiceThread",
    "Session",
    "SessionRegistry",
    "SyncTerpClient",
    "TerpClient",
    "TerpService",
    "WireError",
    "decode_frame",
    "encode_frame",
]
