"""Session lifecycle management, split out of the daemon core.

:class:`SessionManager` owns everything about remote sessions except
the socket: allocation (via :class:`~repro.service.sessions
.SessionRegistry`), resume-token verification, forced release of a
departing session's holdings, the arch engine's forced-detach
callback, and the session-journal hooks that make warm restart
possible.  The daemon (:class:`~repro.service.server.TerpService`)
and the sweeper (:class:`~repro.service.sweeping.Sweeper`) both
operate through this one object, and a cluster shard composes exactly
the same pieces — the session story is identical whether the daemon
runs alone or as one of N workers behind the router.

Locking: every method that touches runtime state assumes the caller
holds ``lib.lock`` (the daemon's dispatch and teardown paths already
do); journal appends are internally serialized by the journal itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Optional, Tuple

from repro.core.errors import Busy, PmoError, TerpError
from repro.pmo.api import PmoLibrary
from repro.service.metrics import ServiceMetrics
from repro.service.sessions import Session, SessionRegistry

if TYPE_CHECKING:
    from repro.obs import Observability
    from repro.service.recovery import SessionJournal


class SessionManager:
    """Sessions as TERP entities: create, resume, release, journal."""

    def __init__(self, *, lib: PmoLibrary, metrics: ServiceMetrics,
                 obs: "Observability", default_ew_budget_ns: int,
                 token_seed: Optional[int] = None,
                 max_sessions: Optional[int] = None) -> None:
        self.lib = lib
        self.metrics = metrics
        self.obs = obs
        self.registry = SessionRegistry(
            default_ew_budget_ns=default_ew_budget_ns,
            token_seed=token_seed)
        self.max_sessions = max_sessions
        #: set by the daemon once the pool directory (and with it the
        #: session journal) exists; ``None`` for an in-memory daemon.
        self.journal: Optional["SessionJournal"] = None
        self._gauge = obs.registry.gauge(
            "terpd_sessions", "currently bound sessions")

    # -- open / resume / close ---------------------------------------------

    def open_session(self, *, user: str,
                     ew_budget_ns: Optional[int],
                     at_ns: int) -> Session:
        """A fresh ``hello``: allocate, journal, count."""
        if self.max_sessions is not None and \
                len(self.registry) >= self.max_sessions:
            # Bounded backpressure: the table is full *right now*;
            # the kind is retryable, so well-behaved clients back
            # off instead of hammering.
            raise Busy(f"session table full "
                       f"({self.max_sessions}); retry later")
        session = self.registry.create(user=user,
                                       ew_budget_ns=ew_budget_ns)
        self.journal_session(session, at_ns)
        return session

    def resume_session(self, session_id: int, token: str) -> Session:
        """Rebind a lingering session after a connection drop.

        Resume restores *identity* (entity id, replay cache, pending
        events), never access: the drop already force-closed every
        window, so a resumed session starts with nothing attached.
        """
        session = self.registry.find(session_id)
        if session is None or session.closed:
            raise TerpError(f"no session {session_id} to resume")
        if not token or token != session.resume_token:
            raise TerpError(f"bad resume token for session "
                            f"{session_id}")
        if session.bound:
            raise TerpError(f"session {session_id} is still bound "
                            "to a live connection")
        self.metrics.note_session_resumed()
        return session

    def close_session(self, session: Session, now_ns: int) -> None:
        """Remove a session for good: journal the close, drop it."""
        self.journal_close(session, now_ns)
        self.registry.remove(session.session_id)
        self.metrics.note_session_closed()
        self.update_gauge()

    def update_gauge(self) -> None:
        self._gauge.set(len(self.registry))

    # -- releasing holdings -------------------------------------------------

    def release(self, session: Session, now_ns: int, *,
                reason: str) -> int:
        """Detach everything a departing session still holds.

        A graceful departure (``goodbye``, shutdown) closes windows as
        ordinary detaches; an involuntary one (connection lost, an
        injected mid-request crash) closes them *forced*, with the
        reason on the audit timeline — the invariant checker insists
        every forced close is attributed.
        """
        forced = reason not in ("goodbye", "shutdown")
        released = self.lib.runtime.release_entity(
            session.entity_id, now_ns, forced=forced, reason=reason)
        for pmo_id, _ in released:
            try:
                name = self.lib.manager.get(pmo_id).name
            except PmoError:
                name = str(pmo_id)
            if forced:
                # Mark the pair forced so a *resumed* session's stale
                # detach is the defined silent no-op, and queue the
                # forced-detach event for its next response.
                session.note_forced_detach(pmo_id, name, now_ns, reason)
            else:
                session.note_detach(pmo_id)
            self.journal_detach(session, pmo_id, name, now_ns,
                                forced=forced, reason=reason)
            if reason == "connection lost":
                self.metrics.note_disconnect_detach()
        session.attached_at.clear()
        return len(released)

    def force_detach(self, session: Session, pmo_id: int,
                     now_ns: int) -> None:
        """Detach one expired holding on the session's behalf."""
        pmo = self.lib.manager.get(pmo_id)
        try:
            self.lib.runtime.detach(session.entity_id, pmo, now_ns,
                                    forced=True,
                                    reason="session EW budget elapsed")
        except TerpError:
            # The pair may already be gone (engine eviction raced us);
            # enforcement is idempotent.
            pass
        session.note_forced_detach(pmo_id, pmo.name, now_ns,
                                   "session EW budget elapsed")
        self.journal_detach(session, pmo_id, pmo.name, now_ns,
                            forced=True,
                            reason="session EW budget elapsed")
        self.metrics.note_forced_detach()

    def on_engine_forced_detach(self, pmo_id: Hashable,
                                thread_ids: Tuple[int, ...]) -> None:
        """Arch-engine callback: eviction/sweep closed open pairs."""
        try:
            name = self.lib.manager.get(pmo_id).name
        except PmoError:
            name = str(pmo_id)
        now = self.lib.clock_ns
        for thread_id in thread_ids:
            if self.obs.enabled:
                self.obs.audit.record_detach(
                    thread_id, pmo_id, name, now, forced=True,
                    reason="arch engine forced detach")
            session = self.registry.by_entity(thread_id)
            if session is not None:
                session.note_forced_detach(pmo_id, name, now,
                                           "arch engine forced detach")
                self.journal_detach(session, pmo_id, name, now,
                                    forced=True,
                                    reason="arch engine forced detach")
                self.metrics.note_forced_detach()

    # -- session journal hooks ---------------------------------------------

    def journal_session(self, session: Session, now_ns: int) -> None:
        if self.journal is not None:
            self.journal.record_session(
                sid=session.session_id, user=session.user,
                token=session.resume_token,
                budget_ns=session.ew_budget_ns, at_ns=now_ns)

    def journal_attach(self, session: Session, pmo_id: int,
                       name: str, now_ns: int) -> None:
        if self.journal is not None:
            self.journal.record_attach(
                sid=session.session_id, pmo_id=pmo_id, pmo=name,
                at_ns=now_ns)

    def journal_detach(self, session: Session, pmo_id: int,
                       name: str, now_ns: int, *,
                       forced: bool = False,
                       reason: str = "") -> None:
        if self.journal is not None:
            self.journal.record_detach(
                sid=session.session_id, pmo_id=pmo_id, pmo=name,
                at_ns=now_ns, forced=forced, reason=reason)

    def journal_close(self, session: Session, now_ns: int) -> None:
        if self.journal is not None:
            self.journal.record_close(
                sid=session.session_id, at_ns=now_ns)
