"""Session bookkeeping: remote clients as TERP entities.

Every connection that says ``hello`` gets a :class:`Session`.  The
session's ``entity_id`` is what the shared :class:`~repro.core.runtime
.TerpRuntime` sees as the "thread" making attach/detach calls — the
paper's permission groups span threads, processes, and users
(Definition 2), and a remote session is exactly such an entity: it
holds thread-level permission grants in the MPK domains, its
attach/detach pairs obey the EW-conscious no-overlap rule, and its
exposure is swept like any local thread's.

A session also carries its *exposure budget*: the wall-clock EW target
after which the daemon's sweeper force-detaches anything the session
still holds.  The budget is the server default unless the client
negotiated a tighter one in ``hello`` (never a looser one — a tenant
cannot opt out of temporal protection).

Robustness state (the chaos-tolerant parts):

* **resume token** — issued at ``hello``; a client whose connection
  dropped proves identity with it to rebind the same session.  A
  dropped session *lingers* (identity, replay cache, pending events)
  for ``linger`` long, but its exposure windows are force-closed at
  the instant of the drop — resumption restores identity, never
  access.
* **replay cache** — the last successful responses keyed by request
  id.  A client that retries a request the server already executed
  (the drop ate the response, not the request) gets the original
  response back instead of a second execution.
* **bounded event queue** — out-of-band notifications are capped;
  under backpressure the oldest are dropped and counted rather than
  growing without bound.
"""

from __future__ import annotations

import itertools
import random
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Set

from repro.core.errors import TerpError
from repro.service.metrics import SessionMetrics

#: Successful responses remembered per session for idempotent replay.
REPLAY_CACHE_SIZE = 256
#: Pending out-of-band events kept per session (backpressure bound).
MAX_PENDING_EVENTS = 256


@dataclass
class Session:
    """One connected client: identity, holdings, pending events."""

    session_id: int
    entity_id: int
    user: str
    ew_budget_ns: int
    #: proves identity on resume; never logged, never in metrics.
    resume_token: str = ""
    #: pmo_id -> attach timestamp (service clock, ns); the sweeper's
    #: input for session-scoped exposure enforcement.
    attached_at: Dict[int, int] = field(default_factory=dict)
    #: out-of-band notifications delivered with the next response —
    #: bounded: the oldest are dropped (and counted) at the cap.
    events: Deque[dict] = field(
        default_factory=lambda: deque(maxlen=MAX_PENDING_EVENTS))
    events_dropped: int = 0
    #: PMOs the sweeper detached on this session's behalf; the
    #: session's own (racing) detach of these is a silent no-op.
    forced_pmos: Set[int] = field(default_factory=set)
    metrics: SessionMetrics = field(default_factory=SessionMetrics)
    closed: bool = False
    #: None while a connection is bound; the drop timestamp (service
    #: clock) while lingering for resume.
    disconnected_at_ns: Optional[int] = None
    #: bumped on every (re)bind; a connection only tears the session
    #: down if it still owns the latest bind.
    generation: int = 0
    #: request id -> (encoded response body, binary sidecar chunks),
    #: for idempotent replay.  Caching the pre-encoded bytes means a
    #: replay hit costs zero ``json.dumps`` work, and the chunks let a
    #: v2 read response replay with its sidecar intact.
    replay: "OrderedDict[int, tuple]" = field(
        default_factory=OrderedDict)
    replays_served: int = 0

    # -- exposure bookkeeping ---------------------------------------------

    def note_attach(self, pmo_id: int, now_ns: int) -> None:
        self.attached_at[pmo_id] = now_ns
        self.forced_pmos.discard(pmo_id)
        self.metrics.attaches += 1

    def note_detach(self, pmo_id: int) -> None:
        self.attached_at.pop(pmo_id, None)
        self.metrics.detaches += 1

    def note_forced_detach(self, pmo_id: int, pmo_name: str,
                           now_ns: int, reason: str) -> None:
        self.attached_at.pop(pmo_id, None)
        self.forced_pmos.add(pmo_id)
        self.metrics.forced_detaches += 1
        self.push_event({
            "event": "forced-detach",
            "pmo": pmo_name,
            "pmo_id": pmo_id,
            "at_ns": now_ns,
            "reason": reason,
        })

    def expired(self, now_ns: int) -> List[int]:
        """PMO ids whose session exposure window has outlived the
        budget — the sweeper force-detaches exactly these."""
        return [pmo_id for pmo_id, since in self.attached_at.items()
                if now_ns - since >= self.ew_budget_ns]

    # -- events (bounded) --------------------------------------------------

    def push_event(self, event: dict) -> None:
        if len(self.events) == self.events.maxlen:
            self.events_dropped += 1
        self.events.append(event)

    def drain_events(self) -> List[dict]:
        events = list(self.events)
        self.events.clear()
        return events

    # -- connection binding / resume ---------------------------------------

    @property
    def bound(self) -> bool:
        return not self.closed and self.disconnected_at_ns is None

    def bind(self) -> int:
        """(Re)bind a connection; returns the new bind generation."""
        self.disconnected_at_ns = None
        self.generation += 1
        return self.generation

    def unbind(self, now_ns: int) -> None:
        self.disconnected_at_ns = now_ns

    def linger_expired(self, now_ns: int, linger_ns: int) -> bool:
        return self.disconnected_at_ns is not None and \
            now_ns - self.disconnected_at_ns >= linger_ns

    # -- idempotent replay -------------------------------------------------

    def replay_put(self, rid: int, body: bytes,
                   chunks: tuple = ()) -> None:
        self.replay[rid] = (body, chunks)
        while len(self.replay) > REPLAY_CACHE_SIZE:
            self.replay.popitem(last=False)

    def replay_get(self, rid: int) -> Optional[tuple]:
        cached = self.replay.get(rid)
        if cached is not None:
            self.replays_served += 1
        return cached


class SessionRegistry:
    """Allocates sessions and their entity ids; supports iteration.

    Entity ids start above any plausible in-process thread id so a
    hybrid embedding (local threads + remote sessions on one library)
    cannot collide.  ``len()`` counts *bound* sessions (what ``ping``
    and the sessions gauge report); iteration covers lingering ones
    too, so the sweeper can purge them.
    """

    FIRST_ENTITY_ID = 1 << 20

    def __init__(self, *, default_ew_budget_ns: int,
                 token_seed: Optional[int] = None) -> None:
        if default_ew_budget_ns <= 0:
            raise TerpError("default_ew_budget_ns must be positive")
        self.default_ew_budget_ns = default_ew_budget_ns
        self._sessions: Dict[int, Session] = {}
        self._next = itertools.count(1)
        self._token_rng = random.Random(token_seed)

    def create(self, *, user: str = "root",
               ew_budget_ns: Optional[int] = None) -> Session:
        sid = next(self._next)
        budget = self.default_ew_budget_ns
        if ew_budget_ns is not None:
            if ew_budget_ns <= 0:
                raise TerpError("session EW budget must be positive")
            # Tenants may tighten their exposure budget, never widen it.
            budget = min(budget, ew_budget_ns)
        session = Session(session_id=sid,
                          entity_id=self.FIRST_ENTITY_ID + sid,
                          user=user, ew_budget_ns=budget,
                          resume_token=f"{self._token_rng.getrandbits(128):032x}")
        self._sessions[sid] = session
        return session

    def restore(self, *, session_id: int, user: str,
                ew_budget_ns: int, resume_token: str,
                disconnected_at_ns: int) -> Session:
        """Re-materialize a journaled session at warm restart.

        The session keeps its original id, entity id, EW budget, and —
        critically — its resume token, so a client that outlived the
        daemon crash can rebind with the token it already holds.  The
        restored session starts *lingering* (no connection is bound);
        the normal linger purge applies from ``disconnected_at_ns``,
        which recovery sets to the restart instant.
        """
        if session_id in self._sessions:
            raise TerpError(f"session {session_id} already exists")
        session = Session(session_id=session_id,
                          entity_id=self.FIRST_ENTITY_ID + session_id,
                          user=user, ew_budget_ns=ew_budget_ns,
                          resume_token=resume_token,
                          disconnected_at_ns=disconnected_at_ns)
        self._sessions[session_id] = session
        # Keep id allocation ahead of every restored session.
        self._next = itertools.count(
            max(session_id + 1,
                max(self._sessions) + 1 if self._sessions else 1))
        return session

    def get(self, session_id: int) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise TerpError(f"no session {session_id}")
        return session

    def find(self, session_id: int) -> Optional[Session]:
        return self._sessions.get(session_id)

    def remove(self, session_id: int) -> Optional[Session]:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            session.closed = True
        return session

    def by_entity(self, entity_id: int) -> Optional[Session]:
        for session in self._sessions.values():
            if session.entity_id == entity_id:
                return session
        return None

    def lingering(self) -> List[Session]:
        return [s for s in self._sessions.values() if not s.bound]

    def __iter__(self) -> Iterator[Session]:
        return iter(list(self._sessions.values()))

    def __len__(self) -> int:
        return sum(1 for s in self._sessions.values() if s.bound)
