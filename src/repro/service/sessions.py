"""Session bookkeeping: remote clients as TERP entities.

Every connection that says ``hello`` gets a :class:`Session`.  The
session's ``entity_id`` is what the shared :class:`~repro.core.runtime
.TerpRuntime` sees as the "thread" making attach/detach calls — the
paper's permission groups span threads, processes, and users
(Definition 2), and a remote session is exactly such an entity: it
holds thread-level permission grants in the MPK domains, its
attach/detach pairs obey the EW-conscious no-overlap rule, and its
exposure is swept like any local thread's.

A session also carries its *exposure budget*: the wall-clock EW target
after which the daemon's sweeper force-detaches anything the session
still holds.  The budget is the server default unless the client
negotiated a tighter one in ``hello`` (never a looser one — a tenant
cannot opt out of temporal protection).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.core.errors import TerpError
from repro.service.metrics import SessionMetrics


@dataclass
class Session:
    """One connected client: identity, holdings, pending events."""

    session_id: int
    entity_id: int
    user: str
    ew_budget_ns: int
    #: pmo_id -> attach timestamp (service clock, ns); the sweeper's
    #: input for session-scoped exposure enforcement.
    attached_at: Dict[int, int] = field(default_factory=dict)
    #: out-of-band notifications delivered with the next response.
    events: List[dict] = field(default_factory=list)
    #: PMOs the sweeper detached on this session's behalf; the
    #: session's own (racing) detach of these is a silent no-op.
    forced_pmos: Set[int] = field(default_factory=set)
    metrics: SessionMetrics = field(default_factory=SessionMetrics)
    closed: bool = False

    def note_attach(self, pmo_id: int, now_ns: int) -> None:
        self.attached_at[pmo_id] = now_ns
        self.forced_pmos.discard(pmo_id)
        self.metrics.attaches += 1

    def note_detach(self, pmo_id: int) -> None:
        self.attached_at.pop(pmo_id, None)
        self.metrics.detaches += 1

    def note_forced_detach(self, pmo_id: int, pmo_name: str,
                           now_ns: int, reason: str) -> None:
        self.attached_at.pop(pmo_id, None)
        self.forced_pmos.add(pmo_id)
        self.metrics.forced_detaches += 1
        self.events.append({
            "event": "forced-detach",
            "pmo": pmo_name,
            "pmo_id": pmo_id,
            "at_ns": now_ns,
            "reason": reason,
        })

    def expired(self, now_ns: int) -> List[int]:
        """PMO ids whose session exposure window has outlived the
        budget — the sweeper force-detaches exactly these."""
        return [pmo_id for pmo_id, since in self.attached_at.items()
                if now_ns - since >= self.ew_budget_ns]

    def drain_events(self) -> List[dict]:
        events, self.events = self.events, []
        return events


class SessionRegistry:
    """Allocates sessions and their entity ids; supports iteration.

    Entity ids start above any plausible in-process thread id so a
    hybrid embedding (local threads + remote sessions on one library)
    cannot collide.
    """

    FIRST_ENTITY_ID = 1 << 20

    def __init__(self, *, default_ew_budget_ns: int) -> None:
        if default_ew_budget_ns <= 0:
            raise TerpError("default_ew_budget_ns must be positive")
        self.default_ew_budget_ns = default_ew_budget_ns
        self._sessions: Dict[int, Session] = {}
        self._next = itertools.count(1)

    def create(self, *, user: str = "root",
               ew_budget_ns: Optional[int] = None) -> Session:
        sid = next(self._next)
        budget = self.default_ew_budget_ns
        if ew_budget_ns is not None:
            if ew_budget_ns <= 0:
                raise TerpError("session EW budget must be positive")
            # Tenants may tighten their exposure budget, never widen it.
            budget = min(budget, ew_budget_ns)
        session = Session(session_id=sid,
                          entity_id=self.FIRST_ENTITY_ID + sid,
                          user=user, ew_budget_ns=budget)
        self._sessions[sid] = session
        return session

    def get(self, session_id: int) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise TerpError(f"no session {session_id}")
        return session

    def remove(self, session_id: int) -> Optional[Session]:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            session.closed = True
        return session

    def by_entity(self, entity_id: int) -> Optional[Session]:
        for session in self._sessions.values():
            if session.entity_id == entity_id:
                return session
        return None

    def __iter__(self) -> Iterator[Session]:
        return iter(list(self._sessions.values()))

    def __len__(self) -> int:
        return len(self._sessions)
