"""terpd — the asyncio PMO daemon.

:class:`TerpService` multiplexes many client sessions onto one shared
:class:`~repro.pmo.api.PmoLibrary` whose semantics engine is the
hardware :class:`~repro.arch.cond_engine.TerpArchEngine`: every remote
attach/detach flows through the CONDAT/CONDDT cases, so window
combining, the circular buffer, and the permission matrix operate
*across* clients exactly as they do across threads in the paper.

Temporal enforcement is two-layered:

* **engine sweep** — the arch engine's periodic sweep closes expired
  delayed-detach windows and re-randomizes held PMOs (Figure 7a),
  driven here by a background asyncio task instead of a hardware timer;
* **session-scoped enforcement** — each session carries a wall-clock
  exposure budget; the same background task force-detaches any PMO a
  session has held past its budget, delivering a ``forced-detach``
  event on the session's next response.  A client that crashes or
  disconnects mid-attach is cleaned up the same way on connection
  teardown, so no remote failure mode can leave a window open.

The daemon's clock is the host's monotonic clock (ns since service
construction); it drives the library clock through
:meth:`PmoLibrary.advance_to`, so exposure windows measured by the
runtime are real wall-clock durations.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.arch.cond_engine import TerpArchEngine
from repro.core.errors import (
    InjectedCrash, IntegrityError, PmoError, TerpError)
from repro.faults.plan import FaultPlan, Injection
from repro.mem.mpk import NUM_KEYS
from repro.core.permissions import Access
from repro.obs import Observability
from repro.pmo.api import PmoLibrary
from repro.pmo.object_id import Oid
from repro.pmo.pool import mode_allows
from repro.pmo.store import (
    DEFAULT_COMMIT_INTERVAL_US, SCRUB_PAGES_PER_PASS, CommitTicket,
    PmoStore)
from repro.service import protocol
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_V1, PROTOCOL_VERSION, WireError, error_response,
    ok_response)
from repro.service.recovery import (
    RecoveryManager, RecoveryReport, SessionJournal)
from repro.service.registry import SessionManager
from repro.service.sessions import Session
from repro.service.sweeping import Sweeper

#: Default wall-clock exposure budget per session: 50ms.  Generous next
#: to the paper's 40us simulated target, but terpd enforces over real
#: client round-trips, not simulated cycles.
DEFAULT_SESSION_EW_NS = 50_000_000
#: Default sweep period: 10ms, a 5x oversampling of the budget.
DEFAULT_SWEEP_PERIOD_NS = 10_000_000
#: How long a dropped session's identity lingers for resume: 2s.
DEFAULT_SESSION_LINGER_NS = 2_000_000_000


class _Conn:
    """Per-connection state: the bound session, once hello'd."""

    __slots__ = ("session", "peer", "generation", "version", "bins",
                 "bin_out")

    def __init__(self, peer: str) -> None:
        self.session: Optional[Session] = None
        self.peer = peer
        #: the session's bind generation this connection owns; teardown
        #: only unbinds if no newer connection has resumed the session.
        self.generation = 0
        #: negotiated protocol revision; v1 until hello says otherwise.
        self.version = PROTOCOL_V1
        #: the current request frame's sidecar cursor (v2 requests
        #: consume their binary chunks from it, in frame order).
        self.bins = protocol.BinReader(b"")
        #: binary chunks produced by the current frame's responses;
        #: joined into the response frame's sidecar.
        self.bin_out: List[bytes] = []


class _PendingFlush:
    """A psync whose fsyncs ride the group committer: the handler
    returns this marker under the library lock; the dispatcher awaits
    the ticket *off* the event loop (``run_in_executor``) after the
    lock is released, so other sessions keep being served while the
    flusher thread pays the fsyncs."""

    __slots__ = ("base", "ticket")

    def __init__(self, base: int, ticket: CommitTicket) -> None:
        self.base = base
        self.ticket = ticket


class TerpService:
    """The terpd daemon: Table I over sockets, with exposure sweeping."""

    def __init__(self, *, host: str = "127.0.0.1",
                 port: Optional[int] = 0,
                 unix_path: Optional[str] = None,
                 ew_target_us: float = 40.0,
                 session_ew_ns: int = DEFAULT_SESSION_EW_NS,
                 sweep_period_ns: int = DEFAULT_SWEEP_PERIOD_NS,
                 cb_capacity: int = 32,
                 seed: int = 2022,
                 obs: Optional[Observability] = None,
                 obs_enabled: bool = True,
                 faults: Optional[FaultPlan] = None,
                 max_sessions: Optional[int] = None,
                 session_linger_ns: int = DEFAULT_SESSION_LINGER_NS,
                 pool_dir: Optional[str] = None,
                 scrub_pages_per_sweep: int = SCRUB_PAGES_PER_PASS,
                 commit_interval_us: int = DEFAULT_COMMIT_INTERVAL_US,
                 protocol_version: int = PROTOCOL_VERSION,
                 shard_index: Optional[int] = None,
                 shard_count: int = 1,
                 replicate_to: Optional[str] = None) -> None:
        if port is None and unix_path is None:
            raise TerpError("need a TCP port and/or a unix socket path")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.sweep_period_ns = sweep_period_ns
        #: Cluster identity: shard ``i`` of ``N`` allocates pmo_ids in
        #: the residue class ``i+1 (mod N)``, so the router can map an
        #: Oid's pool id back to its owning shard with arithmetic
        #: alone.  ``None`` means a standalone daemon (the default).
        self.shard_index = shard_index
        self.shard_count = shard_count
        #: The observability switchboard: metrics registry + tracer +
        #: exposure audit timeline, shared with the library and the
        #: runtime.  ``obs_enabled=False`` runs the daemon in the
        #: measured no-op mode (every recorder short-circuits).
        self.obs = obs if obs is not None else Observability(
            enabled=obs_enabled)
        self._tracer = self.obs.tracer if self.obs.enabled else None
        # Bound mapped PMOs by the MPK key pool as well as the CB:
        # the 16th simultaneous mapping must evict, not exhaust keys.
        engine = TerpArchEngine(int(ew_target_us * 1_000),
                                capacity=cb_capacity,
                                domain_capacity=NUM_KEYS - 1,
                                sweep_period_ns=sweep_period_ns)
        engine.tracer = self._tracer
        self.engine = engine
        #: Optional deterministic fault-injection plan.  One plan is
        #: shared by every layer: the library's storage sites, the
        #: engine's capacity sites, and the server's connection sites
        #: all consume arrivals from the same seeded schedule, and each
        #: firing lands on the audit timeline as a ``fault`` event.
        self.faults = faults
        if faults is not None:
            engine.faults = faults
            faults.on_fire = self._note_injection
        self.max_sessions = max_sessions
        self.session_linger_ns = session_linger_ns
        #: Durable pool backend (``--pool-dir``): file-per-PMO storage
        #: with CRC trailers + double-write journal, a session journal
        #: for warm restart, and a scrub pass on every sweep.
        self.pool_dir = pool_dir
        self.store: Optional[PmoStore] = None
        self.session_journal: Optional[SessionJournal] = None
        self.recovery_report: Optional[RecoveryReport] = None
        self._epoch_wall_ns: Optional[int] = None
        #: highest wire protocol revision this server speaks; capped
        #: at 1 to emulate a legacy (pre-sidecar) daemon in tests.
        self.protocol_version = protocol_version
        if pool_dir is not None:
            self.store = PmoStore(pool_dir, faults=faults,
                                  commit_interval_us=commit_interval_us)
        self.lib = PmoLibrary(semantics=engine, seed=seed, strict=True,
                              obs=self.obs, faults=faults,
                              store=self.store)
        if shard_index is not None:
            self.lib.manager.set_id_namespace(start=shard_index + 1,
                                              step=shard_count)
        if self.store is not None:
            engine.scrubber = lambda: self.store.scrub(
                scrub_pages_per_sweep)
            engine.on_scrub = self._on_scrub
        self.metrics = ServiceMetrics(self.obs.registry)
        #: Session lifecycle: allocation, resume, release, journaling.
        self.sessions = SessionManager(
            lib=self.lib, metrics=self.metrics, obs=self.obs,
            default_ew_budget_ns=session_ew_ns, token_seed=seed,
            max_sessions=max_sessions)
        #: The raw registry, for embedders and recovery.
        self.registry = self.sessions.registry
        engine.on_forced_detach = self.sessions.on_engine_forced_detach
        self._t0 = time.monotonic_ns()
        #: Temporal enforcement: the session-budget + engine sweep.
        self.sweeper = Sweeper(
            lib=self.lib, sessions=self.sessions, metrics=self.metrics,
            obs=self.obs, sweep_period_ns=sweep_period_ns,
            session_linger_ns=session_linger_ns, now_ns=self.now_ns,
            faults=faults, tracer=self._tracer)
        self._servers: List[asyncio.AbstractServer] = []
        self._sweeper: Optional[asyncio.Task] = None
        self._writers: set = set()
        self._stopped = False
        self._crashed = False
        self.bound_port: Optional[int] = None
        self._handlers: Dict[str, Callable[[_Conn, Dict], Any]] = {
            "hello": self._op_hello,
            "goodbye": self._op_goodbye,
            "ping": self._op_ping,
            "metrics": self._op_metrics,
            "create": self._op_create,
            "open": self._op_open,
            "close": self._op_close,
            "destroy": self._op_destroy,
            "attach": self._op_attach,
            "detach": self._op_detach,
            "pmalloc": self._op_pmalloc,
            "pfree": self._op_pfree,
            "read": self._op_read,
            "write": self._op_write,
            "read_u64": self._op_read_u64,
            "write_u64": self._op_write_u64,
            "psync": self._op_psync,
            "tx_begin": self._op_tx_begin,
            "tx_abort": self._op_tx_abort,
            "trace": self._op_trace,
            "prometheus": self._op_prometheus,
            "repl_status": self._op_repl_status,
        }
        #: per-op span names, precomputed off the hot path
        self._span_names = {op: f"terpd.{op}" for op in self._handlers}
        #: ops allowed before hello binds a session (observability
        #: reads included: a scraper needs no entity identity)
        self._sessionless = {"hello", "ping", "metrics", "trace",
                             "prometheus", "repl_status"}
        if self.store is not None:
            # Warm restart happens *here*, before any socket binds:
            # the pool is rescanned and verified, surviving sessions
            # are restored (lingering, same resume token), and every
            # holding open at the crash is force-detached on the
            # unbroken exposure clock — all before the first request.
            self.session_journal = SessionJournal(pool_dir)
            self.sessions.journal = self.session_journal
            self.recovery_report = RecoveryManager(self).recover()
        #: Journal shipping (``--replicate-to host:port``): every
        #: post-fsync group-commit batch streams to a warm standby,
        #: semi-synchronously — a psync acked to the client is applied
        #: on the standby too (invariant I7).  Built after recovery so
        #: the first bootstrap ships the recovered (compacted) state.
        self.replicate_to = replicate_to
        self.shipper: Optional[Any] = None
        if replicate_to is not None:
            if self.store is None:
                raise TerpError("--replicate-to requires --pool-dir "
                                "(only durable state can be shipped)")
            from repro.replication.shipper import JournalShipper
            peer_host, _, peer_port = replicate_to.rpartition(":")
            self.shipper = JournalShipper(
                peer_host or "127.0.0.1", int(peer_port),
                store=self.store, journal=self.session_journal,
                metrics=self.metrics, faults=faults)
            self.store.shipper = self.shipper
            self.session_journal.mirror = self.shipper.ship_journal

    # -- clock ---------------------------------------------------------------

    def wall_clock_ns(self) -> int:
        return time.time_ns()

    def adopt_epoch(self, epoch_wall_ns: int) -> None:
        """Pin the service clock to a persisted wall-clock epoch.

        With a pool directory the exposure clock is
        ``wall_clock - epoch``: a restart on the same pool resumes the
        *same* time axis, so exposure accrued before the crash and
        time elapsed during the outage both count.
        """
        self._epoch_wall_ns = epoch_wall_ns

    def now_ns(self) -> int:
        """Nanoseconds on the service's exposure clock.

        Monotonic since construction for an in-memory daemon; with a
        durable pool, wall-clock since the pool's persisted epoch —
        continuous across daemon restarts.
        """
        if self._epoch_wall_ns is not None:
            return max(0, time.time_ns() - self._epoch_wall_ns)
        return time.monotonic_ns() - self._t0

    # -- scrub hook -----------------------------------------------------------

    def _on_scrub(self, result) -> None:
        """Engine callback after each sweep's bounded scrub pass."""
        if not isinstance(result, dict):
            return
        self.metrics.note_scrub(
            verified=result.get("verified", 0),
            repaired=result.get("repaired", 0),
            quarantined=result.get("quarantined", 0))
        if self.obs.enabled:
            self.obs.audit.record_scrub(
                self.lib.clock_ns,
                verified=result.get("verified", 0),
                repaired=result.get("repaired", 0),
                quarantined=result.get("quarantined", 0))

    # -- fault-injection hook -------------------------------------------------

    def _note_injection(self, injection: Injection) -> None:
        """Every fired rule lands on the audit timeline, so a chaos
        run's faults and its exposure events share one record."""
        if self.obs.enabled:
            self.obs.audit.record_fault(
                injection.site, injection.kind, self.lib.clock_ns,
                detail=f"rule {injection.rule_index} "
                       f"arrival {injection.arrival}")
        self.metrics.note_fault(injection.site)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the configured endpoints and launch the sweeper."""
        if self.port is not None:
            server = await asyncio.start_server(
                self._serve_connection, self.host, self.port)
            self._servers.append(server)
            self.bound_port = server.sockets[0].getsockname()[1]
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._serve_connection, path=self.unix_path)
            self._servers.append(server)
        if self.shipper is not None:
            # The first dial (and bootstrap) happens off the event
            # loop; an unreachable standby degrades to the background
            # dialer, never delays serving.
            await asyncio.get_running_loop().run_in_executor(
                None, self.shipper.start)
        self._sweeper = asyncio.create_task(self.sweeper.loop())

    async def stop(self) -> None:
        """Graceful shutdown: stop sweeping, detach every session."""
        if self._stopped:
            return
        self._stopped = True
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
        for server in self._servers:
            server.close()
            await server.wait_closed()
        with self.lib.lock:
            now = self.lib.advance_to(self.now_ns())
            for session in self.registry:
                self.sessions.release(session, now, reason="shutdown")
                self.sessions.journal_close(session, now)
                self.registry.remove(session.session_id)
            self.lib.runtime.finish(self.lib.clock_ns)
        if self.store is not None:
            # Drain the group committer: every submitted psync batch
            # reaches disk before the journal handle goes away.
            self.store.close()
        if self.shipper is not None:
            # After the drain: every committed batch already shipped.
            self.shipper.stop()
        if self.session_journal is not None:
            self.session_journal.close()
        for writer in list(self._writers):
            writer.close()

    async def crash(self) -> None:
        """Die like ``kill -9``: sockets drop, nothing is released.

        The abrupt counterpart of :meth:`stop` for in-process restart
        tests: no session is detached, no journal record is written,
        no flush happens — exactly the state a SIGKILL leaves.  The
        session journal and the durable pool files already on disk are
        what recovery gets.
        """
        self._stopped = True
        self._crashed = True
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
        for server in self._servers:
            server.close()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self.store is not None:
            # The flusher thread dies with the process: queued commit
            # batches are dropped (their psyncs never answered, so
            # nothing was promised) and the thread is joined so it
            # cannot race a restarted service's recovery scan.
            self.store.abort_commits()
        if self.shipper is not None:
            # The replication socket dies mid-stream, as SIGKILL would.
            self.shipper.abort()
        if self.session_journal is not None:
            # Only drops the file handle; appended records stay.
            self.session_journal.close()

    async def serve_forever(self) -> None:
        await self.start()
        try:
            await asyncio.Event().wait()
        finally:
            await self.stop()

    # -- the sweeper ---------------------------------------------------------

    def run_sweep(self) -> int:
        """One sweeper pass; returns the number of forced detaches.

        Delegates to :class:`~repro.service.sweeping.Sweeper`; kept on
        the service for tests and embedders that drive sweeps by hand.
        """
        return self.sweeper.run_sweep()

    # -- connection handling ---------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or \
            writer.get_extra_info("sockname") or "unix"
        conn = _Conn(str(peer))
        self._writers.add(writer)
        faults = self.faults
        transport = writer.transport
        try:
            while True:
                got = await protocol.read_frame_ex(reader)
                if got is None:
                    break
                payload, sidecar = got
                if faults is not None and \
                        faults.fire("server.conn_drop") is not None:
                    # The connection dies before the request runs: the
                    # client's retry re-sends it and it executes once.
                    break
                if faults is not None and \
                        faults.fire("server.session_crash") is not None:
                    # The session's handler "process" dies before the
                    # request runs: windows force-closed, identity gone
                    # for good (no resume), connection severed.
                    self._crash_session(conn)
                    break
                conn.bins = protocol.BinReader(sidecar)
                conn.bin_out = []
                try:
                    if isinstance(payload, list):
                        self.metrics.note_batch()
                        # Each response is encoded exactly once, here;
                        # encode_body splices the pre-encoded parts.
                        parts: List[bytes] = []
                        for one in payload:
                            parts.append(await self._dispatch(conn, one))
                        body = protocol.encode_body(parts)
                    else:
                        body = await self._dispatch(conn, payload)
                except InjectedCrash:
                    # A crash-kind storage fault mid-request: no
                    # response ever leaves; the crash-torture harness
                    # snapshots the persistent bytes at this instant.
                    self._crash_session(conn)
                    break
                out = conn.bin_out
                frame = protocol.frame_from_body(
                    body, b"".join(out) if out else None)
                if faults is not None:
                    rule = faults.fire("server.delay_response")
                    if rule is not None and rule.delay_ns > 0:
                        await asyncio.sleep(rule.delay_ns / 1e9)
                    rule = faults.fire("server.partial_frame")
                    if rule is not None:
                        # The request executed; only a truncated frame
                        # escapes.  The retried request hits the
                        # replay cache, not a second execution.
                        writer.write(frame[:max(1, len(frame) // 2)])
                        await writer.drain()
                        break
                # Write-coalescing: queue the frame and only pay a
                # drain once the transport buffer backs up, so a
                # pipelined burst of responses leaves in a few
                # syscalls instead of one flush per response.
                writer.write(frame)
                if transport is None or \
                        transport.get_write_buffer_size() > 65536:
                    await writer.drain()
        except (WireError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            session = conn.session
            if session is not None and not session.closed and \
                    not self._crashed and \
                    session.generation == conn.generation:
                # Temporal protection does not wait for a resume: every
                # window closes *now*, forced and attributed.  Only the
                # session's identity (token, replay cache, events)
                # lingers for a possible rebind.
                with self.lib.lock:
                    now = self.lib.advance_to(self.now_ns())
                    self.sessions.release(session, now,
                                          reason="connection lost")
                    session.unbind(now)
                self.metrics.note_session_closed()
                self.sessions.update_gauge()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _crash_session(self, conn: _Conn) -> None:
        """An injected mid-request crash: the session dies for good."""
        session = conn.session
        conn.session = None
        if session is None or session.closed:
            return
        with self.lib.lock:
            now = self.lib.advance_to(self.now_ns())
            self.sessions.release(session, now,
                                  reason="session crashed (injected)")
            self.sessions.close_session(session, now)

    # -- dispatch --------------------------------------------------------------

    async def _dispatch(self, conn: _Conn, req: Any) -> bytes:
        """Run one request; returns the *encoded* response body bytes.

        Encoding here (rather than in the serve loop) lets the replay
        cache hold pre-encoded bytes and lets a batch splice its parts
        without a second ``json.dumps`` pass.  Binary results land on
        ``conn.bin_out``; an error rolls the chunk list back to this
        request's start so a failed op never leaks sidecar bytes.
        """
        t0 = time.perf_counter_ns()
        rid = req.get("id") if isinstance(req, dict) else None
        op = req.get("op") if isinstance(req, dict) else None
        session = conn.session
        bin_start = len(conn.bin_out)
        if session is not None and isinstance(rid, int):
            # Idempotent replay: a request the server already executed
            # (the drop ate the response) returns its original
            # response instead of running twice.
            cached = session.replay_get(rid)
            if cached is not None:
                self.metrics.note_replay_served()
                return self._replay_bytes(conn, cached)
        try:
            if not isinstance(req, dict) or not isinstance(op, str):
                raise WireError("request must be an object with an 'op'")
            handler = self._handlers.get(op)
            if handler is None:
                raise WireError(f"unknown op {op!r}")
            if session is None and op not in self._sessionless:
                raise TerpError(f"op {op!r} requires a session; "
                                "say hello first")
            args = req.get("args") or {}
            if not isinstance(args, dict):
                raise WireError("'args' must be an object")
            with self.lib.lock:
                self.lib.advance_to(self.now_ns())
                result = handler(conn, args)
            if isinstance(result, _PendingFlush):
                # Group commit's executor boundary: the library lock is
                # already released; the ticket wait (the fsyncs) runs
                # on a worker thread so the event loop keeps serving
                # other connections while the flusher batches.
                flushed = result.base
                if result.ticket.done:
                    flushed += result.ticket.wait(0)
                else:
                    loop = asyncio.get_running_loop()
                    flushed += await loop.run_in_executor(
                        None, result.ticket.wait)
                result = {"flushed": flushed}
            session = conn.session     # hello may have bound one
            events = session.drain_events() if session else None
            response = ok_response(rid, result, events)
            ok = True
            body = protocol.encode_body(response)
            if session is not None and isinstance(rid, int):
                # Only successes are cached: a retried failure must
                # re-execute, or a transient error would replay as a
                # permanent one.
                session.replay_put(rid, body,
                                   tuple(conn.bin_out[bin_start:]))
        except InjectedCrash:
            raise                      # the "process" dies mid-request
        except (TerpError, WireError) as exc:
            del conn.bin_out[bin_start:]
            events = session.drain_events() if session else None
            body = protocol.encode_body(error_response(
                rid, type(exc).__name__, str(exc), events))
            ok = False
        except (KeyError, TypeError, ValueError) as exc:
            del conn.bin_out[bin_start:]
            body = protocol.encode_body(error_response(
                rid, "BadRequest", f"malformed arguments: {exc!r}"))
            ok = False
        latency = time.perf_counter_ns() - t0
        op_name = op if isinstance(op, str) else "?"
        self.metrics.note_request(op_name, latency, ok=ok)
        if self._tracer is not None:
            self._tracer.record_since(
                self._span_names.get(op_name, "terpd.?"), t0, ok=ok)
        if session is not None:
            session.metrics.requests += 1
            if not ok:
                session.metrics.errors += 1
        return body

    def _replay_bytes(self, conn: _Conn, cached: tuple) -> bytes:
        """Re-emit a cached response on this connection's protocol."""
        body, chunks = cached
        if not chunks:
            return body
        if conn.version >= 2:
            conn.bin_out.extend(chunks)
            return body
        # A v1 connection (e.g. a downgraded resume) replaying a
        # response first served over v2: fold the sidecar chunks back
        # into base64 text.
        response = json.loads(body)
        result = response.get("result")
        if isinstance(result, dict) and "bin" in result:
            result.pop("bin")
            result["data"] = protocol.encode_bytes(b"".join(chunks))
        return protocol.encode_body(response)

    # -- ops: session ----------------------------------------------------------

    def _op_hello(self, conn: _Conn, args: Dict) -> Dict:
        if conn.session is not None:
            raise TerpError("connection already has a session")
        # Version negotiation: a client that omits ``version`` is v1;
        # otherwise the connection speaks ``min(client, server)``.  A
        # v1-capped server keeps the legacy strict rejection, which is
        # what a v2 client's fallback path keys on.
        version = int(args.get("version", PROTOCOL_V1))
        if version < PROTOCOL_V1 or (self.protocol_version <= PROTOCOL_V1
                                     and version != PROTOCOL_V1):
            raise TerpError(f"protocol version {version} unsupported; "
                            f"server speaks {self.protocol_version}")
        negotiated = min(version, self.protocol_version)
        resume = args.get("resume")
        if resume is not None:
            session = self.sessions.resume_session(
                int(resume), str(args.get("token", "")))
        else:
            budget_us = args.get("ew_budget_us")
            budget_ns = None if budget_us is None else int(
                float(budget_us) * 1_000)
            session = self.sessions.open_session(
                user=str(args.get("user", "root")),
                ew_budget_ns=budget_ns, at_ns=self.lib.clock_ns)
        conn.generation = session.bind()
        conn.session = session
        conn.version = negotiated
        self.metrics.note_session_opened()
        self.sessions.update_gauge()
        return {"session": session.session_id,
                "entity": session.entity_id,
                "version": negotiated,
                "ew_budget_us": session.ew_budget_ns / 1_000,
                "token": session.resume_token,
                "resumed": resume is not None}

    def _op_goodbye(self, conn: _Conn, args: Dict) -> Dict:
        session = conn.session
        assert session is not None
        released = self.sessions.release(session, self.lib.clock_ns,
                                         reason="goodbye")
        self.sessions.close_session(session, self.lib.clock_ns)
        return {"released": released}

    def _op_ping(self, conn: _Conn, args: Dict) -> Dict:
        return {"now_ns": self.lib.clock_ns,
                "sessions": len(self.registry)}

    def _op_metrics(self, conn: _Conn, args: Dict) -> Dict:
        counters = self.lib.runtime.counters
        out = {
            "global": self.metrics.to_dict(),
            "sessions": len(self.registry),
            "runtime": {
                "attach_calls": counters.attach_calls,
                "detach_calls": counters.detach_calls,
                "silent_percent": counters.silent_percent,
                "randomizations": counters.randomizations,
                "faults": counters.faults,
                "accesses": counters.accesses,
            },
            "arch_cases": {
                "case1_first_attach":
                    self.engine.cases.case1_first_attach,
                "case3_silent_attach":
                    self.engine.cases.case3_silent_attach,
                "case5_full_detach":
                    self.engine.cases.case5_full_detach,
                "case6_delayed_detach":
                    self.engine.cases.case6_delayed_detach,
                "sweep_detaches": self.engine.cases.sweep_detaches,
                "sweep_randomizes": self.engine.cases.sweep_randomizes,
            },
            "audit": self.obs.audit.summary(),
            "trace": self.obs.tracer.stats(),
        }
        if self.shard_index is not None:
            out["shard"] = self.shard_index
        if args.get("raw"):
            # The full instrument registry (counters, gauges, and
            # histograms *with buckets*): what the cluster router
            # fans out for, so it can sum counters and merge latency
            # buckets exactly instead of averaging percentiles.
            out["registry"] = self.obs.registry.to_dict()
        if self.recovery_report is not None:
            out["recovery"] = self.recovery_report.to_dict()
        if conn.session is not None:
            out["session"] = conn.session.metrics.to_dict()
        return out

    def _op_repl_status(self, conn: _Conn, args: Dict) -> Dict:
        """Replication health: target, connectivity, lag, drops."""
        if self.shipper is None:
            return {"enabled": False}
        return {"enabled": True, **self.shipper.status()}

    def _op_trace(self, conn: _Conn, args: Dict) -> Dict:
        """Observability read: recent spans + audit timeline events."""
        limit = int(args.get("limit", 100))
        pmo = args.get("pmo")
        kind = args.get("kind")
        name = args.get("name")
        return {
            "spans": self.obs.tracer.recent(
                limit=limit, name=str(name) if name is not None
                else None),
            "audit": self.obs.audit.events(
                pmo=pmo, kind=str(kind) if kind is not None else None,
                limit=limit),
            "open_windows": self.obs.audit.open_windows(
                self.lib.clock_ns),
        }

    def _op_prometheus(self, conn: _Conn, args: Dict) -> Dict:
        """The registry in Prometheus text exposition format."""
        return {"text": self.obs.registry.prometheus_text()}

    # -- observability dump ----------------------------------------------------

    def dump_observability(self) -> Dict:
        """The full registry/audit/trace state as one document —
        the payload of ``--metrics-dump`` and of embedders that want
        everything at once."""
        counters = self.lib.runtime.counters
        return self.obs.dump(extra={
            "service": self.metrics.to_dict(),
            "shard": self.shard_index,
            "sessions": len(self.registry),
            "runtime": {
                "attach_calls": counters.attach_calls,
                "detach_calls": counters.detach_calls,
                "silent_percent": counters.silent_percent,
                "randomizations": counters.randomizations,
                "faults": counters.faults,
                "accesses": counters.accesses,
            },
        })

    # -- ops: namespace --------------------------------------------------------

    def _op_create(self, conn: _Conn, args: Dict) -> Dict:
        session = conn.session
        pmo = self.lib.PMO_create(str(args["name"]), int(args["size"]),
                                  int(args.get("mode", 0o600)),
                                  owner=session.user)
        return {"pmo": pmo.pmo_id, "name": pmo.name,
                "size": pmo.size_bytes}

    def _op_open(self, conn: _Conn, args: Dict) -> Dict:
        session = conn.session
        access = Access.parse(str(args.get("access", "rw")))
        pmo = self.lib.PMO_open(str(args["name"]), access,
                                user=session.user)
        return {"pmo": pmo.pmo_id, "name": pmo.name,
                "size": pmo.size_bytes}

    def _op_close(self, conn: _Conn, args: Dict) -> Dict:
        pmo = self.lib.manager.lookup(str(args["name"]))
        self.lib.PMO_close(pmo)
        return {"closed": pmo.pmo_id}

    def _op_destroy(self, conn: _Conn, args: Dict) -> Dict:
        session = conn.session
        name = str(args["name"])
        pmo = self.lib.manager.lookup(name)
        if session.user not in (pmo.owner, "root"):
            raise PmoError(f"user {session.user!r} may not destroy "
                           f"PMO {name!r} owned by {pmo.owner!r}")
        self.lib.PMO_destroy(name)
        return {"destroyed": name}

    # -- ops: attach / detach ----------------------------------------------------

    def _op_attach(self, conn: _Conn, args: Dict) -> Dict:
        session = conn.session
        access = Access.parse(str(args.get("access", "rw")))
        pmo = self.lib.manager.lookup(str(args["name"]))
        if not mode_allows(pmo.mode,
                           is_owner=(session.user == pmo.owner),
                           requested=access):
            raise PmoError(f"user {session.user!r} denied {access} on "
                           f"PMO {pmo.name!r}")
        if pmo.quarantined and access & Access.WRITE:
            # A quarantined PMO (unrepairable integrity failure) stays
            # readable for forensics but never writable.
            raise IntegrityError(
                f"PMO {pmo.name!r} is quarantined "
                f"({pmo.quarantine_reason}); write attach denied",
                pmo=pmo.name)
        now = self.lib.clock_ns
        result = self.lib.runtime.attach(session.entity_id, pmo, access,
                                         now)
        if not result.ok:
            raise PmoError(f"attach failed: {result.decision.reason}")
        session.note_attach(pmo.pmo_id, now)
        self.sessions.journal_attach(session, pmo.pmo_id, pmo.name, now)
        self.metrics.note_attach()
        return {"outcome": result.decision.outcome.value,
                "base_va": result.handle.base_va_at_attach,
                "reason": result.decision.reason}

    def _op_detach(self, conn: _Conn, args: Dict) -> Dict:
        session = conn.session
        pmo = self.lib.manager.lookup(str(args["name"]))
        if pmo.pmo_id in session.forced_pmos:
            # The sweeper already detached this on the session's
            # behalf and the session's own detach raced it — a defined
            # silent outcome, mirroring the engine's forced-pair rule.
            session.forced_pmos.discard(pmo.pmo_id)
            return {"outcome": "silent",
                    "reason": "already force-detached by sweeper"}
        decision = self.lib.runtime.detach(session.entity_id, pmo,
                                           self.lib.clock_ns)
        session.note_detach(pmo.pmo_id)
        self.sessions.journal_detach(session, pmo.pmo_id, pmo.name,
                                     self.lib.clock_ns)
        self.metrics.note_detach()
        return {"outcome": decision.outcome.value,
                "reason": decision.reason}

    # -- ops: heap + data --------------------------------------------------------

    def _op_pmalloc(self, conn: _Conn, args: Dict) -> Dict:
        pmo = self.lib.manager.lookup(str(args["name"]))
        oid = self.lib.pmalloc(pmo, int(args["size"]))
        return {"oid": oid.pack()}

    def _op_pfree(self, conn: _Conn, args: Dict) -> Dict:
        self.lib.pfree(Oid.unpack(int(args["oid"])))
        return {"freed": True}

    def _op_read(self, conn: _Conn, args: Dict) -> Dict:
        session = conn.session
        n = int(args["n"])
        with self.lib.thread(session.entity_id):
            data = self.lib.read(Oid.unpack(int(args["oid"])), n)
        session.metrics.bytes_read += len(data)
        if conn.version >= 2:
            conn.bin_out.append(data)
            return {"bin": len(data)}
        return {"data": protocol.encode_bytes(data)}

    def _op_write(self, conn: _Conn, args: Dict) -> Dict:
        session = conn.session
        raw = args["data"]
        if isinstance(raw, dict):
            # v2 binary marker: the payload rode the frame's sidecar.
            data = conn.bins.take(int(raw["bin"]))
        else:
            data = protocol.decode_bytes(str(raw))
        with self.lib.thread(session.entity_id):
            self.lib.write(Oid.unpack(int(args["oid"])), data)
        session.metrics.bytes_written += len(data)
        return {"n": len(data)}

    def _op_read_u64(self, conn: _Conn, args: Dict) -> Dict:
        with self.lib.thread(conn.session.entity_id):
            value = self.lib.read_u64(Oid.unpack(int(args["oid"])))
        conn.session.metrics.bytes_read += 8
        return {"value": value}

    def _op_write_u64(self, conn: _Conn, args: Dict) -> Dict:
        with self.lib.thread(conn.session.entity_id):
            self.lib.write_u64(Oid.unpack(int(args["oid"])),
                               int(args["value"]))
        conn.session.metrics.bytes_written += 8
        return {"written": True}

    def _op_psync(self, conn: _Conn, args: Dict) -> Any:
        pmo = self.lib.manager.lookup(str(args["name"]))
        base, ticket = self.lib.psync_submit(pmo)
        if ticket is None:
            return {"flushed": base}
        return _PendingFlush(base, ticket)

    def _op_tx_begin(self, conn: _Conn, args: Dict) -> Dict:
        pmo = self.lib.manager.lookup(str(args["name"]))
        return {"tx": pmo.begin_tx()}

    def _op_tx_abort(self, conn: _Conn, args: Dict) -> Dict:
        pmo = self.lib.manager.lookup(str(args["name"]))
        pmo.abort_tx()
        return {"aborted": True}


class ServiceThread:
    """Run a :class:`TerpService` on its own event loop in a thread.

    The harness the example, the benchmark, and the tests share: the
    caller's thread stays synchronous (driving
    :class:`~repro.service.client.SyncTerpClient`s) while the daemon
    serves from a background loop.
    """

    def __init__(self, service: TerpService) -> None:
        self.service = service
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> TerpService:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="terpd")
        self._thread.start()
        if not self._started.wait(timeout):
            raise TerpError("terpd thread failed to start in time")
        if self._error is not None:
            raise TerpError(f"terpd failed to start: {self._error}")
        return self.service

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:   # surface to start()/stop()
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.service.start()
        self._started.set()
        await self._stop.wait()
        if not self.service._crashed:
            await self.service.stop()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TerpError("terpd thread did not stop in time")
        self._thread = None

    def kill(self, timeout: float = 10.0) -> None:
        """SIGKILL the daemon, in-process: abrupt death, no shutdown.

        Sessions are not released, the session journal gets no
        goodbye records, nothing is flushed — the pool directory is
        left exactly as the last ``psync`` put it.  Restart by
        constructing a fresh :class:`TerpService` on the same
        ``pool_dir``.
        """
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.service.crash(), self._loop)
            try:
                future.result(timeout)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TerpError("terpd thread did not die in time")
        self._thread = None

    def __enter__(self) -> TerpService:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
