"""Permission sets and permission groups (Definitions 1 and 2).

The paper formalizes TERP over *permission sets* — binary read/write/
execute rights over data objects — and *permission groups*: sets of
entities (threads, processes, users) sharing a permission set.  These
classes are used by the poset machinery (:mod:`repro.core.poset`) to
order protection mechanisms, and by the runtime to track per-thread
grants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable


class Access(enum.Flag):
    """Access kinds of Definition 1: read, write, execute."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXECUTE = enum.auto()
    RW = READ | WRITE
    RWX = READ | WRITE | EXECUTE

    @classmethod
    def parse(cls, text: str) -> "Access":
        """Parse a compact permission string like ``"rw"`` or ``"R"``.

        >>> Access.parse("rw") is Access.RW
        True
        """
        mapping = {"r": cls.READ, "w": cls.WRITE, "x": cls.EXECUTE}
        result = cls.NONE
        for ch in text.lower():
            if ch not in mapping:
                raise ValueError(f"unknown access character {ch!r} in {text!r}")
            result |= mapping[ch]
        return result

    def allows(self, requested: "Access") -> bool:
        """True if every bit of ``requested`` is granted by ``self``."""
        return (self & requested) == requested

    def short(self) -> str:
        """Compact display form, e.g. ``"rw-"``."""
        return ("r" if self & Access.READ else "-") + \
               ("w" if self & Access.WRITE else "-") + \
               ("x" if self & Access.EXECUTE else "-")


@dataclass(frozen=True)
class PermissionSet:
    """A permission set P over named objects (Definition 1).

    Stored as a frozen set of ``(object_name, Access)`` pairs where the
    Access value carries the granted bits for that object.  Objects not
    present have no access.
    """

    grants: FrozenSet[tuple] = field(default_factory=frozenset)

    @classmethod
    def of(cls, **kwargs: str) -> "PermissionSet":
        """Build from keyword arguments: ``PermissionSet.of(pmo1="rw")``."""
        return cls(frozenset((name, Access.parse(mode))
                             for name, mode in kwargs.items()))

    def access_to(self, obj: str) -> Access:
        """The access this set grants to ``obj`` (NONE if absent)."""
        combined = Access.NONE
        for name, acc in self.grants:
            if name == obj:
                combined |= acc
        return combined

    def objects(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.grants)

    def is_subset_of(self, other: "PermissionSet") -> bool:
        """P1 <= P2: every grant in P1 is covered by P2.

        This is the containment used for the poset partial order: a
        permission set is *weaker* (lower) if it grants no more than
        the other on every object.
        """
        return all(other.access_to(name).allows(acc)
                   for name, acc in self.grants)

    def intersect(self, other: "PermissionSet") -> "PermissionSet":
        """Greatest common permission set of two sets."""
        grants = []
        for name in self.objects() & other.objects():
            acc = self.access_to(name) & other.access_to(name)
            if acc != Access.NONE:
                grants.append((name, acc))
        return PermissionSet(frozenset(grants))

    def union(self, other: "PermissionSet") -> "PermissionSet":
        """Least common upper bound of two permission sets."""
        grants = {}
        for name, acc in list(self.grants) + list(other.grants):
            grants[name] = grants.get(name, Access.NONE) | acc
        return PermissionSet(frozenset(grants.items()))

    def __bool__(self) -> bool:
        return bool(self.grants)


class EntityKind(enum.Enum):
    """Kinds of entities a permission group may contain (Definition 2)."""

    THREAD = "thread"
    PROCESS = "process"
    USER = "user"
    USER_GROUP = "user_group"


@dataclass(frozen=True)
class Entity:
    """An agent g with its own permission set p(g)."""

    kind: EntityKind
    name: str

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}"


@dataclass(frozen=True)
class PermissionGroup:
    """A permission group G(P): entities sharing permission set P.

    Definition 2 requires P to be contained in the intersection of the
    members' own permission sets; :meth:`validate` checks that against
    a mapping of per-entity permissions.
    """

    members: FrozenSet[Entity]
    shared: PermissionSet

    @classmethod
    def of(cls, members: Iterable[Entity], shared: PermissionSet) -> "PermissionGroup":
        return cls(frozenset(members), shared)

    def validate(self, entity_permissions: dict) -> bool:
        """Check P is a subset of the intersection of members' p(g)."""
        for member in self.members:
            perm = entity_permissions.get(member)
            if perm is None or not self.shared.is_subset_of(perm):
                return False
        return True

    def is_subgroup_of(self, other: "PermissionGroup") -> bool:
        """Partial order used in the Hasse diagram of Figure 2.

        G1 <= G2 when G1's members are contained in G2's and G1's
        shared permission is no stronger than G2's.  (A thread-level
        grant sits below the process-wide attach that covers it.)
        """
        return (self.members <= other.members
                and self.shared.is_subset_of(other.shared))
