"""The TERP runtime: semantics decisions applied to real substrates.

:class:`TerpRuntime` is the software layer a protected process runs
under.  Every attach/detach/access flows through the configured
semantics engine (:mod:`repro.core.semantics`); the engine's verdict is
then *applied*:

* MAP/UNMAP — the PMO is attached to / detached from the
  :class:`~repro.mem.address_space.AddressSpace` (randomized base,
  embedded-subtree install, permission-matrix entry);
* GRANT/REVOKE — the thread's MPK protection-domain rights change;
* RANDOMIZE — the PMO is relocated to a fresh base address.

The runtime also records exposure windows (EW and TEW) and per-outcome
counters — the quantities Tables III/IV report — and optionally logs a
full event trace.

Time is externally supplied (``now_ns`` on every call): in examples a
manual clock is fine; in the simulator the machine's clock drives it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.obs import Observability

from repro.core.errors import ProtectionFault, SegmentationFault, TerpError
from repro.core.events import EventKind, Trace, TraceEvent
from repro.core.exposure import ExposureMonitor
from repro.core.permissions import Access
from repro.core.semantics import (
    Action, ActionKind, Decision, Outcome, SemanticsEngine)
from repro.mem.address_space import AddressSpace
from repro.pmo.object_id import Oid
from repro.pmo.pool import PmoManager


@dataclass
class RuntimeCounters:
    """Per-outcome tallies — the inputs to the Silent% and overhead
    breakdowns of the evaluation."""

    attach_calls: int = 0
    detach_calls: int = 0
    attach_syscalls: int = 0      # performed (real) attaches
    detach_syscalls: int = 0      # performed (real) detaches
    silent_attaches: int = 0
    silent_detaches: int = 0
    randomizations: int = 0
    grants: int = 0
    revokes: int = 0
    faults: int = 0
    blocked: int = 0
    accesses: int = 0
    errors: int = 0

    @property
    def silent_percent(self) -> float:
        """Fraction of attach/detach calls that avoided a system call."""
        total = self.attach_calls + self.detach_calls
        if total == 0:
            return 0.0
        silent = self.silent_attaches + self.silent_detaches
        return 100.0 * silent / total


class Handle:
    """The immutable handler ``attach()`` returns (Section II).

    It records the virtual address the PMO had at attach time
    (``base_va_at_attach``) and offers the *relocatable* translation
    path (:meth:`direct`) that follows the PMO through randomization —
    the paper's footnote 2 assumes all PMO accesses use it.
    """

    def __init__(self, runtime: "TerpRuntime", pmo, thread_id: int,
                 base_va_at_attach: int) -> None:
        self._runtime = runtime
        self.pmo = pmo
        self.thread_id = thread_id
        self.base_va_at_attach = base_va_at_attach

    def direct(self, oid: Oid) -> int:
        """``oid_direct``: the OID's *current* virtual address."""
        offset = self.pmo.offset_of(oid)
        return self._runtime.space.va_of(self.pmo.pmo_id, offset)


class TerpRuntime:
    """One protected process: semantics engine + memory substrates."""

    def __init__(self, semantics: SemanticsEngine, *,
                 manager: Optional[PmoManager] = None,
                 space: Optional[AddressSpace] = None,
                 monitor: Optional[ExposureMonitor] = None,
                 trace: Optional[Trace] = None,
                 rng: Optional[np.random.Generator] = None,
                 strict: bool = False,
                 obs: Optional["Observability"] = None) -> None:
        self.semantics = semantics
        self.manager = manager if manager is not None else PmoManager()
        self.space = space if space is not None else AddressSpace(
            rng=rng if rng is not None else np.random.default_rng(2022))
        self.monitor = monitor if monitor is not None else ExposureMonitor()
        self.trace = trace
        #: strict=True raises on semantics violations instead of
        #: returning the ERROR decision — handy in tests and examples.
        self.strict = strict
        self.counters = RuntimeCounters()
        self._last_now = 0
        # Observability is opt-in; the cached handles make the hot-path
        # guard a single None check when it is off.
        self.obs = obs
        self._audit = (obs.audit if obs is not None and obs.enabled
                       else None)
        # Per-attach/detach spans are opt-in detail (obs.trace_runtime):
        # the audit timeline already records those events, so the span
        # stream only adds latency attribution when explicitly wanted.
        self._tracer = (obs.tracer
                        if obs is not None and obs.enabled
                        and obs.trace_runtime else None)

    # -- clock discipline ---------------------------------------------------

    def _advance(self, now_ns: int) -> int:
        if now_ns < self._last_now:
            raise TerpError(
                f"time went backwards: {now_ns} < {self._last_now}")
        self._last_now = now_ns
        return now_ns

    @property
    def now_ns(self) -> int:
        return self._last_now

    # -- TERP constructs --------------------------------------------------------

    def attach(self, thread_id: int, pmo, access: Access,
               now_ns: int) -> "AttachResult":
        """The attach construct; returns the decision and a Handle."""
        tracer = self._tracer
        t0 = tracer.clock() if tracer is not None else 0
        self._advance(now_ns)
        self.counters.attach_calls += 1
        decision = self.semantics.attach(thread_id, pmo.pmo_id, access,
                                         now_ns)
        self._record(EventKind.ATTACH, now_ns, thread_id, pmo.pmo_id,
                     decision)
        if decision.outcome is Outcome.ERROR:
            self.counters.errors += 1
            if self.strict:
                raise TerpError(f"attach error: {decision.reason}")
            return AttachResult(decision, None)
        if decision.outcome is Outcome.BLOCKED:
            self.counters.blocked += 1
            return AttachResult(decision, None)
        if decision.performed:
            self.counters.attach_syscalls += 1
        else:
            self.counters.silent_attaches += 1
        self._apply(decision, pmo, now_ns)
        mapping = self.space.mapping_of(pmo.pmo_id)
        handle = Handle(self, pmo, thread_id,
                        mapping.base_va if mapping else 0)
        if self._audit is not None:
            self._audit.record_attach(thread_id, pmo.pmo_id, pmo.name,
                                      now_ns,
                                      reason=decision.outcome.value)
        if tracer is not None:
            tracer.record_since("rt.attach", t0, pmo=pmo.name,
                                entity=thread_id,
                                outcome=decision.outcome.value)
        return AttachResult(decision, handle)

    def detach(self, thread_id: int, pmo, now_ns: int, *,
               forced: bool = False, reason: str = "") -> Decision:
        """The detach construct.

        ``forced``/``reason`` only annotate the audit timeline: a
        supervisor (the terpd sweeper) detaching on an entity's behalf
        passes ``forced=True`` so the event is distinguishable from the
        entity closing its own window.
        """
        tracer = self._tracer
        t0 = tracer.clock() if tracer is not None else 0
        self._advance(now_ns)
        self.counters.detach_calls += 1
        decision = self.semantics.detach(thread_id, pmo.pmo_id, now_ns)
        self._record(EventKind.DETACH, now_ns, thread_id, pmo.pmo_id,
                     decision)
        if decision.outcome is Outcome.ERROR:
            self.counters.errors += 1
            if self.strict:
                raise TerpError(f"detach error: {decision.reason}")
            return decision
        if decision.performed:
            self.counters.detach_syscalls += 1
        else:
            self.counters.silent_detaches += 1
        self._apply(decision, pmo, now_ns)
        if self._audit is not None:
            self._audit.record_detach(
                thread_id, pmo.pmo_id, pmo.name, now_ns, forced=forced,
                reason=reason or decision.outcome.value)
        if tracer is not None:
            tracer.record_since("rt.detach", t0, pmo=pmo.name,
                                entity=thread_id,
                                outcome=decision.outcome.value)
        return decision

    def access(self, thread_id: int, pmo, offset: int, requested: Access,
               now_ns: int) -> Decision:
        """One simulated load/store at ``offset`` within ``pmo``."""
        self._advance(now_ns)
        self.counters.accesses += 1
        decision = self.semantics.access(thread_id, pmo.pmo_id, requested,
                                         now_ns)
        if decision.outcome in (Outcome.FAULT_SEGV, Outcome.FAULT_PERM):
            self.counters.faults += 1
            self._record(EventKind.FAULT, now_ns, thread_id, pmo.pmo_id,
                         decision)
            if self.strict:
                cls = (SegmentationFault
                       if decision.outcome is Outcome.FAULT_SEGV
                       else ProtectionFault)
                raise cls(decision.reason, thread_id=thread_id,
                          pmo_id=pmo.pmo_id)
            return decision
        self._apply(decision, pmo, now_ns)  # FCFS REATTACH emits MAP
        self._record(EventKind.ACCESS, now_ns, thread_id, pmo.pmo_id,
                     decision)
        return decision

    # -- entity lifecycle (remote sessions) ---------------------------------

    def entity_holdings(self, thread_id: int) -> list:
        """PMO ids on which the entity currently holds access."""
        return self.semantics.entity_pmos(thread_id)

    def release_entity(self, thread_id: int, now_ns: int, *,
                       forced: bool = False, reason: str = "") -> list:
        """Detach everything ``thread_id`` still holds.

        The cleanup path for a remote session that disconnected or
        crashed mid-attach: each held PMO gets a detach on the entity's
        behalf, flowing through the normal semantics engine so counters,
        exposure windows, and window combining stay correct.  Errors on
        individual PMOs are collected, not raised — a dying session must
        never leave the rest of its holdings dangling.

        ``forced``/``reason`` annotate the audit timeline exactly as
        on :meth:`detach`: a supervisor releasing a dead session's
        holdings passes ``forced=True`` so the record distinguishes
        the closure from the entity closing its own windows.

        Returns ``[(pmo_id, Decision | TerpError), ...]``.
        """
        released = []
        for pmo_id in self.entity_holdings(thread_id):
            pmo = self.manager.get(pmo_id)
            try:
                released.append((pmo_id,
                                 self.detach(thread_id, pmo, now_ns,
                                             forced=forced,
                                             reason=reason)))
            except TerpError as exc:
                released.append((pmo_id, exc))
        return released

    def sweep(self, now_ns: int) -> list:
        """Run the engine's periodic sweep and apply its decisions.

        Only meaningful for engines with a hardware sweeper (the arch
        engine); for pure software engines this is a no-op.  This is
        the surface a service daemon drives from a background task.
        """
        sweep = getattr(self.semantics, "sweep", None)
        if sweep is None:
            return []
        when = max(now_ns, self._last_now)
        self._advance(when)
        decisions = sweep(now_ns)
        for decision in decisions:
            pmo = self.manager.get(decision.actions[0].pmo_id)
            self._apply(decision, pmo, when)
        return decisions

    # -- applying decisions ----------------------------------------------------

    def _apply(self, decision: Decision, pmo, now_ns: int) -> None:
        for action in decision.actions:
            # A decision may bundle actions on several PMOs (eviction:
            # UNMAP of the victim folded into the new PMO's attach) —
            # resolve each action's own target.
            if action.pmo_id == pmo.pmo_id:
                target = pmo
            else:
                target = self.manager.get(action.pmo_id)
            if action.kind is ActionKind.MAP:
                self.space.attach(target, Access.RW)
                self.monitor.pmo_mapped(target.pmo_id, now_ns)
                self._note(EventKind.MAP, now_ns, action)
            elif action.kind is ActionKind.UNMAP:
                self.space.detach(target.pmo_id)
                self.monitor.pmo_unmapped(target.pmo_id, now_ns)
                self._note(EventKind.UNMAP, now_ns, action)
            elif action.kind is ActionKind.GRANT:
                self.space.domains.grant(action.thread_id, target.pmo_id,
                                         action.access)
                if not self.monitor.tew.is_open((action.thread_id,
                                                 target.pmo_id)):
                    self.monitor.thread_granted(action.thread_id,
                                                target.pmo_id, now_ns)
                self.counters.grants += 1
                self._note(EventKind.GRANT, now_ns, action)
            elif action.kind is ActionKind.REVOKE:
                if self.space.domains.key_of(target.pmo_id) is not None:
                    self.space.domains.revoke(action.thread_id,
                                              target.pmo_id)
                if self.monitor.tew.is_open((action.thread_id,
                                             target.pmo_id)):
                    self.monitor.thread_revoked(action.thread_id,
                                                target.pmo_id, now_ns)
                self.counters.revokes += 1
                self._note(EventKind.REVOKE, now_ns, action)
            elif action.kind is ActionKind.RANDOMIZE:
                self.space.randomize(target.pmo_id)
                self.counters.randomizations += 1
                # The PMO's address changed: the exposure window of the
                # old location ends here and a new one begins.  This is
                # what makes TT's EWs sit at the target (Table III) —
                # an address never outlives the maximum EW.
                if self.monitor.ew.is_open(target.pmo_id):
                    self.monitor.pmo_unmapped(target.pmo_id, now_ns)
                    self.monitor.pmo_mapped(target.pmo_id, now_ns)
                self._note(EventKind.RANDOMIZE, now_ns, action)

    # -- tracing ------------------------------------------------------------

    def _record(self, kind: EventKind, now_ns: int, thread_id: int,
                pmo_id: Hashable, decision: Decision) -> None:
        if self.trace is not None:
            self.trace.record(TraceEvent(kind, now_ns, thread_id, pmo_id,
                                         outcome=decision.outcome.value,
                                         detail=decision.reason))

    def _note(self, kind: EventKind, now_ns: int, action: Action) -> None:
        if self.trace is not None:
            self.trace.record(TraceEvent(kind, now_ns, action.thread_id,
                                         action.pmo_id))

    # -- end of run ------------------------------------------------------------

    def finish(self, now_ns: int) -> None:
        """Close any still-open windows at the end of a run."""
        self._advance(now_ns)
        self.monitor.finish(now_ns)


@dataclass
class AttachResult:
    decision: Decision
    handle: Optional[Handle]

    @property
    def ok(self) -> bool:
        return self.handle is not None
