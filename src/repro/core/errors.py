"""Exception hierarchy for the TERP reproduction.

Every subsystem raises exceptions derived from :class:`TerpError` so
callers can catch reproduction-level failures without masking ordinary
Python errors.  The split mirrors the paper's fault classes: semantics
violations (Section IV), protection faults observed by the simulated
hardware (Sections III and V), and substrate misuse (Table I API).
"""

from __future__ import annotations


class TerpError(Exception):
    """Base class for all errors raised by the repro package."""


class SemanticsViolation(TerpError):
    """An attach/detach sequence violated the active semantics.

    Under *Basic* semantics, for example, a second ``attach()`` before
    the matching ``detach()`` is invalid (Figure 3, line 7 of the
    example code) and surfaces as this exception.
    """


class ProtectionFault(TerpError):
    """A simulated load/store was denied.

    Carries enough context to distinguish the three PMO data states of
    Section VII-D: detached (segmentation fault), attached without
    thread permission (permission fault), attached with insufficient
    permission kind (e.g. store with read-only grant).
    """

    def __init__(self, message: str, *, kind: str = "permission",
                 thread_id: int | None = None, pmo_id: int | None = None):
        super().__init__(message)
        #: ``"segfault"`` when the PMO is not mapped at all,
        #: ``"permission"`` when mapped but the thread lacks access.
        self.kind = kind
        self.thread_id = thread_id
        self.pmo_id = pmo_id


class SegmentationFault(ProtectionFault):
    """Access to a PMO that is not mapped into the address space."""

    def __init__(self, message: str, *, thread_id: int | None = None,
                 pmo_id: int | None = None):
        super().__init__(message, kind="segfault", thread_id=thread_id,
                         pmo_id=pmo_id)


class PmoError(TerpError):
    """Misuse of the PMO pool API (Table I): bad OID, double free, ..."""


class OutOfPersistentMemory(PmoError):
    """``pmalloc`` could not satisfy the request within the PMO."""


class CrashConsistencyError(PmoError):
    """The persistent log or snapshot is in an unrecoverable state."""


class IntegrityError(PmoError):
    """Persistent bytes failed verification (CRC mismatch) and no
    repair source exists — bit rot, media decay, or tampering.

    Carries the PMO name and the page index so the operator can
    quarantine precisely.  Distinct from
    :class:`CrashConsistencyError`: the *log* is fine, the *data* is
    provably not what was written.
    """

    def __init__(self, message: str, *, pmo: str = "",
                 page_index: int | None = None) -> None:
        super().__init__(message)
        self.pmo = pmo
        self.page_index = page_index


class TornPageError(IntegrityError):
    """A page's home location failed verification but the double-write
    journal holds a good copy — a write torn by a crash mid-flush.

    Always repairable (that is the journal's reason to exist); raised
    only when a caller asks for verification without repair.
    """


class Busy(TerpError):
    """A transient resource limit (e.g. the session table is full).

    Explicitly retryable: the condition clears on its own, so clients
    back off and try again rather than treating it as a hard failure.
    """


class InjectedFault(TerpError):
    """A deterministic fault-injection rule fired (transient).

    Raised at registered injection sites when the active
    :class:`~repro.faults.plan.FaultPlan` decides the operation fails.
    Models a *transient* failure — a storage write error, an exhausted
    protection-domain pool — that a client may safely retry.  Carries
    the site so callers (and tests) can attribute the failure.
    """

    def __init__(self, message: str, *, site: str = "") -> None:
        super().__init__(message)
        self.site = site


class InjectedCrash(InjectedFault):
    """A fault-injection rule demanded a crash at this point.

    The terpd server treats this as the hosting process dying
    mid-request: the session's windows are force-closed, the
    connection is severed without a response, and the persistent bytes
    are left exactly as they were when the crash fired — the
    crash-torture harness snapshots them and drives recovery.
    """


class CompilerError(TerpError):
    """Malformed IR or a failed static-analysis precondition."""


class SimulationError(TerpError):
    """The discrete-event machine reached an inconsistent state."""


class ConfigurationError(TerpError):
    """An evaluation configuration (MM/TM/TT) is internally inconsistent."""
