"""The four attach/detach semantics of Section IV.

Each semantics is an engine that consumes attach/detach/access events
from (simulated) threads and decides, per event:

* whether the call is **performed** (a real map/unmap of the PMO),
  **silent** (absorbed / lowered to a weaker mechanism), an **error**
  (semantics violation), or — for Basic semantics in multithreaded
  runs — **blocked** until the PMO frees up (Figure 11's "basic
  semantics" bars),
* which side-effect *actions* the runtime must apply: MAP, UNMAP,
  GRANT/REVOKE of thread permission, RANDOMIZE.

The engines are deliberately pure state machines: they do not know
about costs, the circular buffer, or the exposure monitor.  The
runtime (:mod:`repro.core.runtime`) applies their decisions, charges
Table II costs, and records exposure windows.

Semantics implemented (Figure 3):

``BasicSemantics``
    Every attach must be followed by a detach; nested or concurrent
    attaches are invalid.  Process-wide.

``OutermostSemantics``
    Overlapping pairs must nest perfectly; only the outermost pair is
    performed, inner calls are silent.  EWs can grow without bound —
    the paper rejects it for that reason.

``FcfsSemantics``
    Outermost attach performed, inner attaches silent; the *first*
    detach after an attach is performed, later ones silent; an access
    after that first detach (but before the outermost detach) triggers
    an automatic reattach.

``EwConsciousSemantics``
    The chosen semantics (Section IV-C): no overlap within a thread;
    overlap across threads is fine.  Real attach iff the PMO is not
    mapped, otherwise the call lowers to a thread-permission grant.
    Real detach iff the EW target L has elapsed since the last real
    attach *and* no other thread holds access; if L has elapsed but
    other threads still hold access, the PMO is re-randomized instead
    (the randomization augmentation of Section IV-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.errors import SemanticsViolation
from repro.core.permissions import Access


class Outcome(enum.Enum):
    """What happened to an attach/detach call or an access."""

    PERFORMED = "performed"      # real syscall-level map/unmap
    SILENT = "silent"            # absorbed or lowered on the poset
    ERROR = "error"              # semantics violation
    BLOCKED = "blocked"          # must wait (Basic semantics, MT mode)
    OK = "ok"                    # access permitted
    FAULT_SEGV = "segfault"      # access to an unmapped PMO
    FAULT_PERM = "perm-fault"    # mapped but thread lacks permission
    REATTACH = "reattach"        # FCFS: access triggered auto reattach


class ActionKind(enum.Enum):
    """Side effects the runtime must apply for a decision."""

    MAP = "map"                  # map PMO into address space
    UNMAP = "unmap"              # remove mapping
    GRANT = "grant"              # open thread permission
    REVOKE = "revoke"            # close thread permission
    RANDOMIZE = "randomize"      # relocate the PMO (threads suspended)


@dataclass(frozen=True)
class Action:
    kind: ActionKind
    pmo_id: Hashable
    thread_id: Optional[int] = None
    access: Access = Access.NONE


@dataclass
class Decision:
    """Engine verdict for one event."""

    outcome: Outcome
    actions: List[Action] = field(default_factory=list)
    reason: str = ""

    @property
    def performed(self) -> bool:
        return self.outcome is Outcome.PERFORMED

    @property
    def silent(self) -> bool:
        return self.outcome is Outcome.SILENT


@dataclass
class _PmoState:
    """Per-PMO bookkeeping shared by the engines."""

    mapped: bool = False
    last_real_attach_ns: int = -1
    #: thread_id -> granted Access (EW-conscious thread permissions)
    holders: Dict[int, Access] = field(default_factory=dict)
    #: nesting depth (Outermost) / outstanding attach calls (FCFS)
    depth: int = 0
    #: thread currently holding the Basic-semantics attach
    owner: Optional[int] = None


class SemanticsEngine:
    """Base class; concrete engines override the three event methods."""

    name = "abstract"

    def __init__(self) -> None:
        self._pmos: Dict[Hashable, _PmoState] = {}

    def _state(self, pmo_id: Hashable) -> _PmoState:
        return self._pmos.setdefault(pmo_id, _PmoState())

    # -- queries used by the runtime and tests -----------------------------

    def is_mapped(self, pmo_id: Hashable) -> bool:
        return self._state(pmo_id).mapped

    def holders(self, pmo_id: Hashable) -> Dict[int, Access]:
        return dict(self._state(pmo_id).holders)

    def thread_access(self, thread_id: int, pmo_id: Hashable) -> Access:
        return self._state(pmo_id).holders.get(thread_id, Access.NONE)

    def last_real_attach_ns(self, pmo_id: Hashable) -> int:
        return self._state(pmo_id).last_real_attach_ns

    def entity_pmos(self, thread_id: int) -> List[Hashable]:
        """PMOs on which ``thread_id`` currently holds access.

        This is the entity-lifecycle query the service layer uses to
        clean up after a remote session that disconnects or crashes
        mid-attach: every listed PMO still needs a detach on the
        entity's behalf.
        """
        return [pmo_id for pmo_id, st in self._pmos.items()
                if thread_id in st.holders]

    # -- events -------------------------------------------------------------

    def attach(self, thread_id: int, pmo_id: Hashable, access: Access,
               now_ns: int) -> Decision:
        raise NotImplementedError

    def detach(self, thread_id: int, pmo_id: Hashable,
               now_ns: int) -> Decision:
        raise NotImplementedError

    def access(self, thread_id: int, pmo_id: Hashable, requested: Access,
               now_ns: int) -> Decision:
        raise NotImplementedError


class BasicSemantics(SemanticsEngine):
    """Figure 3 "Basic": strict pairing, process-wide, no overlap at all.

    ``blocking=True`` switches errors on concurrent attach into BLOCKED
    decisions, modelling the serialized execution the paper measures in
    Figure 11 ("at most one thread can attach a PMO ... other threads
    need to wait until this PMO is detached").
    """

    name = "basic"

    def __init__(self, *, blocking: bool = False) -> None:
        super().__init__()
        self.blocking = blocking

    def attach(self, thread_id, pmo_id, access, now_ns):
        st = self._state(pmo_id)
        if st.mapped:
            if self.blocking and st.owner != thread_id:
                return Decision(Outcome.BLOCKED,
                                reason="PMO attached by another thread")
            return Decision(Outcome.ERROR,
                            reason="attach on already-attached PMO")
        st.mapped = True
        st.owner = thread_id
        st.last_real_attach_ns = now_ns
        st.holders[thread_id] = access
        return Decision(Outcome.PERFORMED, [
            Action(ActionKind.MAP, pmo_id),
            Action(ActionKind.GRANT, pmo_id, thread_id, access),
        ])

    def detach(self, thread_id, pmo_id, now_ns):
        st = self._state(pmo_id)
        if not st.mapped:
            return Decision(Outcome.ERROR, reason="detach on detached PMO")
        if st.owner != thread_id:
            return Decision(Outcome.ERROR,
                            reason="detach by non-owning thread")
        st.mapped = False
        st.owner = None
        st.holders.pop(thread_id, None)
        return Decision(Outcome.PERFORMED, [
            Action(ActionKind.REVOKE, pmo_id, thread_id),
            Action(ActionKind.UNMAP, pmo_id),
        ])

    def access(self, thread_id, pmo_id, requested, now_ns):
        st = self._state(pmo_id)
        if not st.mapped:
            return Decision(Outcome.FAULT_SEGV, reason="PMO not attached")
        granted = st.holders.get(st.owner, Access.NONE)
        # Basic semantics is process-wide: any thread of the process may
        # touch the PMO while attached, with the attach-time permission.
        if not granted.allows(requested):
            return Decision(Outcome.FAULT_PERM,
                            reason=f"need {requested}, have {granted}")
        return Decision(Outcome.OK)


class OutermostSemantics(SemanticsEngine):
    """Figure 3 "Outermost": only the outermost pair acts; inner silent."""

    name = "outermost"

    def attach(self, thread_id, pmo_id, access, now_ns):
        st = self._state(pmo_id)
        st.depth += 1
        if st.depth == 1:
            st.mapped = True
            st.last_real_attach_ns = now_ns
            st.holders[thread_id] = access
            return Decision(Outcome.PERFORMED, [
                Action(ActionKind.MAP, pmo_id),
                Action(ActionKind.GRANT, pmo_id, thread_id, access),
            ])
        # Inner attach: silent, but widen the effective permission so the
        # inner region's accesses are honoured.
        st.holders[thread_id] = st.holders.get(thread_id, Access.NONE) | access
        return Decision(Outcome.SILENT, reason="inner attach")

    def detach(self, thread_id, pmo_id, now_ns):
        st = self._state(pmo_id)
        if st.depth == 0:
            return Decision(Outcome.ERROR, reason="detach without attach")
        st.depth -= 1
        if st.depth == 0:
            st.mapped = False
            actions = [Action(ActionKind.REVOKE, pmo_id, t)
                       for t in list(st.holders)]
            st.holders.clear()
            actions.append(Action(ActionKind.UNMAP, pmo_id))
            return Decision(Outcome.PERFORMED, actions)
        return Decision(Outcome.SILENT, reason="inner detach")

    def access(self, thread_id, pmo_id, requested, now_ns):
        st = self._state(pmo_id)
        if not st.mapped:
            return Decision(Outcome.FAULT_SEGV, reason="PMO not attached")
        granted = Access.NONE
        for acc in st.holders.values():
            granted |= acc
        if not granted.allows(requested):
            return Decision(Outcome.FAULT_PERM,
                            reason=f"need {requested}, have {granted}")
        return Decision(Outcome.OK)


class FcfsSemantics(SemanticsEngine):
    """Figure 3 "FCFS": first detach performed; access auto-reattaches."""

    name = "fcfs"

    def attach(self, thread_id, pmo_id, access, now_ns):
        st = self._state(pmo_id)
        st.depth += 1
        st.holders[thread_id] = st.holders.get(thread_id, Access.NONE) | access
        if st.depth == 1 and not st.mapped:
            st.mapped = True
            st.last_real_attach_ns = now_ns
            return Decision(Outcome.PERFORMED, [
                Action(ActionKind.MAP, pmo_id),
                Action(ActionKind.GRANT, pmo_id, thread_id, access),
            ])
        return Decision(Outcome.SILENT, reason="inner attach")

    def detach(self, thread_id, pmo_id, now_ns):
        st = self._state(pmo_id)
        if st.depth == 0:
            return Decision(Outcome.ERROR, reason="detach without attach")
        st.depth -= 1
        if st.mapped:
            # First detach after a (re)attach is performed.
            st.mapped = False
            actions = []
            if st.depth == 0:
                actions = [Action(ActionKind.REVOKE, pmo_id, t)
                           for t in list(st.holders)]
                st.holders.clear()
            actions.append(Action(ActionKind.UNMAP, pmo_id))
            return Decision(Outcome.PERFORMED, actions)
        if st.depth == 0:
            st.holders.clear()
        return Decision(Outcome.SILENT, reason="already unmapped")

    def access(self, thread_id, pmo_id, requested, now_ns):
        st = self._state(pmo_id)
        if not st.mapped:
            if st.depth > 0:
                # Benign access between the first (performed) detach and
                # the outermost detach: automatic reattach.  The paper's
                # criticism — an attacker access is indistinguishable —
                # is visible here: *any* access reattaches.
                st.mapped = True
                st.last_real_attach_ns = now_ns
                return Decision(Outcome.REATTACH,
                                [Action(ActionKind.MAP, pmo_id)],
                                reason="auto reattach on access")
            return Decision(Outcome.FAULT_SEGV, reason="PMO not attached")
        granted = Access.NONE
        for acc in st.holders.values():
            granted |= acc
        if not granted.allows(requested):
            return Decision(Outcome.FAULT_PERM,
                            reason=f"need {requested}, have {granted}")
        return Decision(Outcome.OK)


class EwConsciousSemantics(SemanticsEngine):
    """Section IV-C EW-conscious semantics — the paper's choice.

    ``ew_target_ns`` is the constant L: a real detach happens only when
    the time since the last real attach exceeds L *and* no other thread
    still holds access.  When L has elapsed but holders remain, the
    engine emits a RANDOMIZE action so the PMO never sits at one
    address longer than (roughly) L.

    ``randomize_on_partial`` can be disabled to ablate the
    randomization augmentation.
    """

    name = "ew-conscious"

    def __init__(self, ew_target_ns: int, *,
                 randomize_on_partial: bool = True) -> None:
        super().__init__()
        if ew_target_ns <= 0:
            raise ValueError("ew_target_ns must be positive")
        self.ew_target_ns = ew_target_ns
        self.randomize_on_partial = randomize_on_partial
        #: per (thread, pmo): is the thread inside an attach-detach pair?
        self._thread_open: Dict[Tuple[int, Hashable], bool] = {}

    def thread_has_open_pair(self, thread_id: int, pmo_id: Hashable) -> bool:
        return self._thread_open.get((thread_id, pmo_id), False)

    def attach(self, thread_id, pmo_id, access, now_ns):
        key = (thread_id, pmo_id)
        if self._thread_open.get(key):
            return Decision(
                Outcome.ERROR,
                reason="overlapping attach within a thread is not allowed")
        st = self._state(pmo_id)
        self._thread_open[key] = True
        st.holders[thread_id] = access
        if not st.mapped:
            st.mapped = True
            st.last_real_attach_ns = now_ns
            return Decision(Outcome.PERFORMED, [
                Action(ActionKind.MAP, pmo_id),
                Action(ActionKind.GRANT, pmo_id, thread_id, access),
            ])
        # Lowering on the TERP poset: the PMO is already mapped, so the
        # call becomes a thread-permission grant only.
        return Decision(Outcome.SILENT, [
            Action(ActionKind.GRANT, pmo_id, thread_id, access),
        ], reason="lowered to thread-permission grant")

    def detach(self, thread_id, pmo_id, now_ns):
        key = (thread_id, pmo_id)
        if not self._thread_open.get(key):
            return Decision(Outcome.ERROR,
                            reason="detach without a matching attach "
                                   "in this thread")
        st = self._state(pmo_id)
        self._thread_open[key] = False
        st.holders.pop(thread_id, None)
        actions = [Action(ActionKind.REVOKE, pmo_id, thread_id)]
        elapsed = now_ns - st.last_real_attach_ns
        if elapsed >= self.ew_target_ns:
            if not st.holders:
                # Condition (i) and (ii) hold: real detach.
                st.mapped = False
                actions.append(Action(ActionKind.UNMAP, pmo_id))
                return Decision(Outcome.PERFORMED, actions)
            if self.randomize_on_partial:
                # (i) holds, (ii) does not: remap at a new random
                # address so the location never outlives L.
                st.last_real_attach_ns = now_ns
                actions.append(Action(ActionKind.RANDOMIZE, pmo_id))
                return Decision(Outcome.SILENT, actions,
                                reason="randomized; other threads hold access")
        return Decision(Outcome.SILENT, actions,
                        reason="lowered to thread-permission revoke")

    def access(self, thread_id, pmo_id, requested, now_ns):
        st = self._state(pmo_id)
        if not st.mapped:
            return Decision(Outcome.FAULT_SEGV, reason="PMO not attached")
        granted = st.holders.get(thread_id, Access.NONE)
        if not granted.allows(requested):
            return Decision(Outcome.FAULT_PERM,
                            reason=f"thread {thread_id} needs "
                                   f"{requested}, has {granted}")
        return Decision(Outcome.OK)


def make_semantics(name: str, *, ew_target_ns: int = 40_000,
                   blocking: bool = False) -> SemanticsEngine:
    """Factory keyed by semantics name, for configuration files."""
    name = name.lower()
    if name == "basic":
        return BasicSemantics(blocking=blocking)
    if name == "outermost":
        return OutermostSemantics()
    if name == "fcfs":
        return FcfsSemantics()
    if name in ("ew-conscious", "ew_conscious", "ewconscious"):
        return EwConsciousSemantics(ew_target_ns)
    raise ValueError(f"unknown semantics {name!r}")
