"""Trace records emitted by the TERP runtime.

A run's event trace is the raw material for several experiments: the
gadget census (Table VI) needs to know which accesses fell inside
thread-permission windows; the exposure plots need the attach/detach
timeline; debugging needs everything.  Tracing is optional — the
runtime only records events when given a :class:`Trace`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Optional


class EventKind(enum.Enum):
    ATTACH = "attach"                # attach call (any outcome)
    DETACH = "detach"                # detach call (any outcome)
    ACCESS = "access"                # load/store attempt
    MAP = "map"                      # real mapping installed
    UNMAP = "unmap"                  # real mapping removed
    GRANT = "grant"                  # thread permission opened
    REVOKE = "revoke"                # thread permission closed
    RANDOMIZE = "randomize"          # PMO relocated
    FAULT = "fault"                  # access denied
    BLOCKED = "blocked"              # thread had to wait (Basic MT)


@dataclass(frozen=True)
class TraceEvent:
    kind: EventKind
    now_ns: int
    thread_id: Optional[int] = None
    pmo_id: Optional[Hashable] = None
    outcome: str = ""
    detail: str = ""


class Trace:
    """An append-only event log with small query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    def record(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def of_kind(self, kind: EventKind) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def for_pmo(self, pmo_id: Hashable) -> List[TraceEvent]:
        return [e for e in self.events if e.pmo_id == pmo_id]

    def for_thread(self, thread_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.thread_id == thread_id]

    def between(self, start_ns: int, end_ns: int) -> List[TraceEvent]:
        return [e for e in self.events if start_ns <= e.now_ns < end_ns]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)
