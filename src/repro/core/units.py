"""Time and size units used throughout the reproduction.

The simulator's native clock is the *nanosecond*, stored as an ``int``
so event ordering is exact (no float accumulation error across a
100K-transaction run).  Cycle counts from Table II are converted at the
core frequency (2.2 GHz in the paper).  The helpers below keep the
conversions explicit at call sites: ``us(40)`` reads as "40 microseconds"
where a bare ``40_000`` would not.
"""

from __future__ import annotations

#: Nanoseconds per microsecond; the paper quotes all window targets in us.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

#: Core frequency from Table II (4-core, each 2.2 GHz).
CORE_FREQ_GHZ = 2.2


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(value * NS_PER_S))


def ns_to_us(value_ns: int) -> float:
    """Convert nanoseconds to (float) microseconds for reporting."""
    return value_ns / NS_PER_US


def cycles_to_ns(cycles: float, freq_ghz: float = CORE_FREQ_GHZ) -> int:
    """Convert a cycle count at ``freq_ghz`` into integer nanoseconds.

    Rounds up to at least 1 ns for any positive cycle count so that a
    1-cycle permission-matrix check still advances the clock.
    """
    if cycles <= 0:
        return 0
    return max(1, int(round(cycles / freq_ghz)))


def ns_to_cycles(value_ns: int, freq_ghz: float = CORE_FREQ_GHZ) -> float:
    """Convert nanoseconds back to cycles at ``freq_ghz``."""
    return value_ns * freq_ghz


KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Page size assumed by the page-table substrate (4KB pages, Table II).
PAGE_SIZE = 4 * KIB
