"""The temporal protection theorem (Theorem 6), executable.

    "If a memory attack requires a memory region to be stationary
    (location unchanged) and accessible for at least t time to
    succeed, the attack can be prevented as long as the exposure
    window of the memory region is smaller than t, and locations of
    the region changed before t elapses."

This module makes the theorem checkable against concrete exposure
schedules: a :class:`Schedule` lists the region's accessibility
windows and relocation instants; :func:`attack_can_succeed` decides
whether any stationary-and-accessible stretch of length ``t`` exists;
:func:`theorem_holds` verifies the theorem's statement itself over a
schedule (used by the property tests, which search for
counterexamples with hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.errors import TerpError
from repro.core.exposure import Window


@dataclass(frozen=True)
class Schedule:
    """A region's temporal protection history.

    ``windows`` — intervals during which the region is accessible to
    the attacker's permission group; ``relocations`` — instants at
    which the region's location changed (randomization).
    """

    windows: Tuple[Window, ...]
    relocations: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        last_end = -1
        for w in self.windows:
            if w.length_ns < 0:
                raise TerpError("window with negative length")
            if w.start_ns < last_end:
                raise TerpError("windows must be sorted and disjoint")
            last_end = w.end_ns

    @classmethod
    def of(cls, windows: Sequence[Tuple[int, int]],
           relocations: Sequence[int] = ()) -> "Schedule":
        return cls(tuple(Window(a, b) for a, b in windows),
                   tuple(sorted(relocations)))

    def max_exposure_ns(self) -> int:
        """The longest single accessibility window."""
        return max((w.length_ns for w in self.windows), default=0)

    def stationary_accessible_stretches(self) -> List[Window]:
        """Maximal intervals that are accessible AND stationary.

        Each accessibility window is cut at every relocation instant
        inside it — after a relocation, knowledge of the old location
        is useless, so the attack's clock restarts.
        """
        stretches: List[Window] = []
        for w in self.windows:
            cuts = [t for t in self.relocations
                    if w.start_ns < t < w.end_ns]
            start = w.start_ns
            for cut in cuts:
                stretches.append(Window(start, cut))
                start = cut
            stretches.append(Window(start, w.end_ns))
        return stretches

    def longest_stationary_accessible_ns(self) -> int:
        return max((s.length_ns
                    for s in self.stationary_accessible_stretches()),
                   default=0)


def attack_can_succeed(schedule: Schedule, attack_time_ns: int) -> bool:
    """Does any stationary+accessible stretch of length >= t exist?"""
    if attack_time_ns <= 0:
        raise TerpError("attack time must be positive")
    return schedule.longest_stationary_accessible_ns() >= attack_time_ns


def theorem_holds(schedule: Schedule, attack_time_ns: int) -> bool:
    """Check Theorem 6's implication on a concrete schedule.

    Premise: every exposure window is smaller than t AND the location
    changes before t elapses within any window.  Conclusion: the
    attack cannot succeed.  Returns True when the implication holds
    (including vacuously, when the premise fails).
    """
    premise = (schedule.max_exposure_ns() < attack_time_ns
               or schedule.longest_stationary_accessible_ns()
               < attack_time_ns)
    if not premise:
        return True  # the theorem says nothing about this schedule
    return not attack_can_succeed(schedule, attack_time_ns)


def terp_schedule(*, ew_ns: int, period_ns: int, horizon_ns: int,
                  randomize_at_window_end: bool = True) -> Schedule:
    """A periodic TERP-style schedule: one EW per period, optionally
    re-randomized at each window boundary."""
    if ew_ns > period_ns:
        raise TerpError("window longer than its period")
    windows = []
    relocations = []
    start = 0
    while start < horizon_ns:
        end = min(start + ew_ns, horizon_ns)
        windows.append((start, end))
        if randomize_at_window_end:
            relocations.append(end)
        start += period_ns
    return Schedule.of(windows, relocations)
