"""Multi-process PMO sharing — the upper tiers of the TERP poset.

The framework's Definition 2 spans threads, *processes*, and users;
Figure 2's Hasse diagram puts per-user permission above process-wide
attach/detach.  This module realizes those tiers: several simulated
processes (each with its own address space, semantics engine, and
exposure accounting) share one PMO namespace, with OS-level mode
checks (owner/user) gating attach — so a PMO can be exposed to one
process while remaining completely unmapped (not merely permission-
blocked) in another.

Each process gets an *independent* randomized placement of the same
PMO: learning the address in process A says nothing about process B,
which is the spatial side of the cross-process protection story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.errors import PmoError, TerpError
from repro.core.events import Trace
from repro.core.exposure import ExposureMonitor
from repro.core.permissions import Access
from repro.core.runtime import AttachResult, TerpRuntime
from repro.core.semantics import EwConsciousSemantics, SemanticsEngine
from repro.core.units import us
from repro.mem.address_space import AddressSpace
from repro.pmo.pmo import Pmo
from repro.pmo.pool import mode_allows, PmoManager


@dataclass
class Process:
    """One simulated process: identity + its own protection stack."""

    name: str
    user: str
    runtime: TerpRuntime

    @property
    def space(self) -> AddressSpace:
        return self.runtime.space


class SharedPmoSystem:
    """A machine-wide PMO namespace shared by multiple processes."""

    def __init__(self, *, seed: int = 2022) -> None:
        self.manager = PmoManager()
        self._seed = seed
        self._processes: Dict[str, Process] = {}

    # -- process management -----------------------------------------------

    def create_process(self, name: str, *, user: str = "root",
                       semantics: Optional[SemanticsEngine] = None,
                       ew_target_us: float = 40.0,
                       trace: Optional[Trace] = None) -> Process:
        if name in self._processes:
            raise TerpError(f"process {name!r} already exists")
        if semantics is None:
            semantics = EwConsciousSemantics(us(ew_target_us))
        # Each process draws placements from its own stream.
        rng = np.random.default_rng(self._seed + len(self._processes))
        runtime = TerpRuntime(semantics, manager=self.manager,
                              space=AddressSpace(rng=rng),
                              monitor=ExposureMonitor(), trace=trace)
        process = Process(name=name, user=user, runtime=runtime)
        self._processes[name] = process
        return process

    def process(self, name: str) -> Process:
        try:
            return self._processes[name]
        except KeyError:
            raise TerpError(f"no process {name!r}") from None

    # -- namespace operations ----------------------------------------------

    def create_pmo(self, process: Process, name: str, size: int,
                   mode: int = 0o600) -> Pmo:
        """The creating process's user becomes the PMO owner."""
        return self.manager.create(name, size, owner=process.user,
                                   mode=mode)

    def attach(self, process: Process, pmo_name: str,
               permission: Access, *, thread_id: int = 0,
               now_ns: int = 0) -> AttachResult:
        """OS-checked attach: mode bits first, then TERP semantics."""
        pmo = self.manager.open(pmo_name, user=process.user,
                                requested=permission)
        return process.runtime.attach(thread_id, pmo, permission,
                                      now_ns)

    def detach(self, process: Process, pmo_name: str, *,
               thread_id: int = 0, now_ns: int = 0):
        pmo = self._pmo(pmo_name)
        return process.runtime.detach(thread_id, pmo, now_ns)

    def access(self, process: Process, pmo_name: str,
               requested: Access, *, thread_id: int = 0,
               offset: int = 0, now_ns: int = 0):
        pmo = self._pmo(pmo_name)
        return process.runtime.access(thread_id, pmo, offset,
                                      requested, now_ns)

    def _pmo(self, name: str) -> Pmo:
        # Resolution without an open-count bump.
        return self.manager.lookup(name)

    # -- cross-process queries ------------------------------------------------

    def base_va(self, process: Process, pmo_name: str) -> Optional[int]:
        pmo = self._pmo(pmo_name)
        mapping = process.space.mapping_of(pmo.pmo_id)
        return None if mapping is None else mapping.base_va

    def exposure_by_process(self, pmo_name: str,
                            total_ns: int) -> Dict[str, float]:
        """Per-process exposure rate of one PMO — the quantity a
        user-level TERP mechanism would bound."""
        pmo = self._pmo(pmo_name)
        out = {}
        for name, process in self._processes.items():
            monitor = process.runtime.monitor
            windows = monitor.ew.windows(pmo.pmo_id)
            open_len = monitor.ew.current_length(pmo.pmo_id, total_ns)
            exposed = sum(w.length_ns for w in windows) + open_len
            out[name] = exposed / total_ns if total_ns else 0.0
        return out
