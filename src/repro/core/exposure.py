"""Exposure-window accounting (Definition 5 and the Table III metrics).

Two granularities are tracked, mirroring the paper's EW/TEW split:

* **Exposure window (EW)** — a contiguous interval during which a PMO
  is mapped in the process address space (accessible by *any* thread
  of the process).
* **Thread exposure window (TEW)** — a contiguous interval during
  which one specific thread holds access permission to the PMO.

From the recorded intervals we derive the reported metrics:

* ``avg``/``max`` window size,
* **ER** (exposure rate) = total exposed time / total execution time,
* **TER** likewise over thread windows.

The tracker is purely observational: the semantics engine and runtime
call :meth:`open`/:meth:`close`; nothing here affects protection
decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.errors import TerpError


@dataclass(frozen=True)
class Window:
    """One closed exposure interval ``[start_ns, end_ns)``."""

    start_ns: int
    end_ns: int

    @property
    def length_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class WindowStats:
    """Summary statistics over a set of windows."""

    count: int
    total_ns: int
    avg_ns: float
    max_ns: int
    min_ns: int

    @classmethod
    def of(cls, windows: List[Window]) -> "WindowStats":
        if not windows:
            return cls(count=0, total_ns=0, avg_ns=0.0, max_ns=0, min_ns=0)
        lengths = [w.length_ns for w in windows]
        total = sum(lengths)
        return cls(count=len(lengths), total_ns=total,
                   avg_ns=total / len(lengths),
                   max_ns=max(lengths), min_ns=min(lengths))


class WindowTracker:
    """Records open/close events for windows keyed by an arbitrary key.

    For EWs the key is the PMO id; for TEWs it is ``(thread_id, pmo_id)``.
    """

    def __init__(self) -> None:
        self._open: Dict[Hashable, int] = {}
        self._closed: Dict[Hashable, List[Window]] = {}

    def open(self, key: Hashable, now_ns: int) -> None:
        """Begin a window; opening an already-open window is an error
        (it would mean the semantics engine lost track of state)."""
        if key in self._open:
            raise TerpError(f"window for {key!r} already open")
        self._open[key] = now_ns

    def close(self, key: Hashable, now_ns: int) -> Window:
        """End the open window for ``key`` and return it."""
        try:
            start = self._open.pop(key)
        except KeyError:
            raise TerpError(f"no open window for {key!r}") from None
        if now_ns < start:
            raise TerpError(
                f"window for {key!r} closes at {now_ns} before open {start}")
        window = Window(start, now_ns)
        self._closed.setdefault(key, []).append(window)
        return window

    def is_open(self, key: Hashable) -> bool:
        return key in self._open

    def shift_open(self, key: Hashable, new_start_ns: int) -> None:
        """Move an open window's start forward (e.g. to exclude the
        syscall processing time from the usable exposure window)."""
        start = self._open.get(key)
        if start is None:
            raise TerpError(f"no open window for {key!r}")
        if new_start_ns < start:
            raise TerpError("cannot shift a window start backwards")
        self._open[key] = new_start_ns

    def open_since(self, key: Hashable) -> Optional[int]:
        return self._open.get(key)

    def current_length(self, key: Hashable, now_ns: int) -> int:
        """Length of the currently open window, 0 if closed."""
        start = self._open.get(key)
        return 0 if start is None else now_ns - start

    def finish(self, now_ns: int) -> None:
        """Close every still-open window at end of run."""
        for key in list(self._open):
            self.close(key, now_ns)

    def windows(self, key: Hashable = None) -> List[Window]:
        """Closed windows for ``key``, or all windows when key is None."""
        if key is not None:
            return list(self._closed.get(key, []))
        out: List[Window] = []
        for wins in self._closed.values():
            out.extend(wins)
        return out

    def keys(self) -> List[Hashable]:
        seen = set(self._closed) | set(self._open)
        return sorted(seen, key=repr)

    def stats(self, key: Hashable = None) -> WindowStats:
        return WindowStats.of(self.windows(key))

    def exposure_rate(self, total_ns: int, key: Hashable = None) -> float:
        """Total exposed time / total time (the paper's ER / TER)."""
        if total_ns <= 0:
            return 0.0
        return self.stats(key).total_ns / total_ns


@dataclass
class ExposureReport:
    """The per-workload row shape of Tables III and IV."""

    ew_avg_us: float
    ew_max_us: float
    er_percent: float
    tew_avg_us: float = 0.0
    ter_percent: float = 0.0
    silent_percent: float = 0.0
    cond_per_second: float = 0.0


class ExposureMonitor:
    """Aggregates EW and TEW trackers for one simulated run."""

    def __init__(self) -> None:
        self.ew = WindowTracker()
        self.tew = WindowTracker()

    # EW: keyed by pmo_id -------------------------------------------------
    def pmo_mapped(self, pmo_id: Hashable, now_ns: int) -> None:
        self.ew.open(pmo_id, now_ns)

    def pmo_unmapped(self, pmo_id: Hashable, now_ns: int) -> Window:
        return self.ew.close(pmo_id, now_ns)

    # TEW: keyed by (thread_id, pmo_id) ------------------------------------
    def thread_granted(self, thread_id: int, pmo_id: Hashable,
                       now_ns: int) -> None:
        self.tew.open((thread_id, pmo_id), now_ns)

    def thread_revoked(self, thread_id: int, pmo_id: Hashable,
                       now_ns: int) -> Window:
        return self.tew.close((thread_id, pmo_id), now_ns)

    def finish(self, now_ns: int) -> None:
        self.ew.finish(now_ns)
        self.tew.finish(now_ns)

    def report(self, total_ns: int, *, silent_percent: float = 0.0,
               cond_per_second: float = 0.0) -> ExposureReport:
        """Produce the Table III/IV row for this run."""
        from repro.core.units import ns_to_us
        ew_stats = self.ew.stats()
        tew_stats = self.tew.stats()
        return ExposureReport(
            ew_avg_us=ns_to_us(ew_stats.avg_ns),
            ew_max_us=ns_to_us(ew_stats.max_ns),
            er_percent=100.0 * self.ew.exposure_rate(total_ns),
            tew_avg_us=ns_to_us(tew_stats.avg_ns),
            ter_percent=100.0 * self.tew.exposure_rate(total_ns),
            silent_percent=silent_percent,
            cond_per_second=cond_per_second,
        )
