"""TERP posets (Definitions 3 and 4) and Hasse-diagram utilities.

A *TERP protection mechanism* reduces the time a memory region is
accessible to a permission group.  Mechanisms of different strength
form a partial order — e.g. process-wide attach/detach sits above
per-thread MPK-style permission control, because detaching removes the
mapping entirely (even Spectre-class attacks fail) while a thread
permission bit can be flipped from user space.

The runtime uses the poset to implement *implicit lowering*: an
``attach()`` on an already-attached PMO lowers to the thread-permission
mechanism one level down (Section IV-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.errors import TerpError


class ProtectionLevel(enum.IntEnum):
    """Canonical strength levels discussed in Section III-B.

    Higher value = stronger isolation = higher overhead, hence used at
    coarser grain (the paper's guidance for choosing levels).
    """

    THREAD_PERMISSION = 1    # MPK-style, user-level PKRU, weakest
    PROCESS_ATTACH = 2       # attach/detach by process (mapping removed)
    USER_PERMISSION = 3      # OS-level per-user permission
    USER_GROUP_PERMISSION = 4


@dataclass(frozen=True)
class Mechanism:
    """One TERP protection mechanism (an element of a TERP poset)."""

    name: str
    level: ProtectionLevel
    #: Approximate cost in cycles to engage/disengage the mechanism;
    #: used by documentation and ablation benches, not by correctness.
    engage_cost_cycles: int = 0
    description: str = ""

    def __str__(self) -> str:
        return self.name


class TerpPoset:
    """A partially ordered set of protection mechanisms (Definition 4).

    The order is supplied as explicit covering pairs plus the implied
    order from :class:`ProtectionLevel`.  Supports the standard order-
    theoretic queries the paper leans on: comparability, covering
    relation (for Hasse diagrams), maximal/minimal elements, and the
    "lowering" step used by EW-conscious semantics.
    """

    def __init__(self) -> None:
        self._elements: Dict[str, Mechanism] = {}
        self._less: Dict[str, Set[str]] = {}  # name -> set of strictly-greater names

    # -- construction -------------------------------------------------

    def add(self, mechanism: Mechanism) -> Mechanism:
        if mechanism.name in self._elements:
            raise TerpError(f"duplicate poset element {mechanism.name!r}")
        self._elements[mechanism.name] = mechanism
        self._less[mechanism.name] = set()
        return mechanism

    def order(self, lower: Mechanism, higher: Mechanism) -> None:
        """Declare ``lower < higher`` and close transitively."""
        if lower.name not in self._elements or higher.name not in self._elements:
            raise TerpError("both mechanisms must be added before ordering")
        if lower == higher or self.leq(higher, lower):
            raise TerpError(
                f"ordering {lower.name} < {higher.name} would create a cycle")
        self._less[lower.name].add(higher.name)
        # Transitive closure: everything below `lower` is below everything
        # above `higher`.
        above_higher = {higher.name} | self._less[higher.name]
        for name, above in self._less.items():
            if name == lower.name or lower.name in above:
                self._less[name] |= above_higher

    @classmethod
    def standard(cls) -> "TerpPoset":
        """The poset of Figure 2 / Section III-B, as used by the runtime.

        thread-permission < process attach/detach < user permission
        < user-group permission.
        """
        poset = cls()
        thread = poset.add(Mechanism(
            "thread-permission", ProtectionLevel.THREAD_PERMISSION,
            engage_cost_cycles=27,
            description="MPK-style per-thread access permission (PKRU)"))
        attach = poset.add(Mechanism(
            "process-attach", ProtectionLevel.PROCESS_ATTACH,
            engage_cost_cycles=4422,
            description="attach/detach by process: mapping added/removed"))
        user = poset.add(Mechanism(
            "user-permission", ProtectionLevel.USER_PERMISSION,
            engage_cost_cycles=100_000,
            description="OS permission on user"))
        group = poset.add(Mechanism(
            "user-group-permission", ProtectionLevel.USER_GROUP_PERMISSION,
            engage_cost_cycles=100_000,
            description="OS permission on user groups"))
        poset.order(thread, attach)
        poset.order(attach, user)
        poset.order(user, group)
        return poset

    # -- order queries ------------------------------------------------

    def elements(self) -> List[Mechanism]:
        return list(self._elements.values())

    def get(self, name: str) -> Mechanism:
        try:
            return self._elements[name]
        except KeyError:
            raise TerpError(f"unknown poset element {name!r}") from None

    def leq(self, a: Mechanism, b: Mechanism) -> bool:
        """a <= b under the declared partial order."""
        return a == b or b.name in self._less[a.name]

    def comparable(self, a: Mechanism, b: Mechanism) -> bool:
        return self.leq(a, b) or self.leq(b, a)

    def strictly_below(self, a: Mechanism) -> List[Mechanism]:
        return [self._elements[n] for n, above in self._less.items()
                if a.name in above]

    def strictly_above(self, a: Mechanism) -> List[Mechanism]:
        return [self._elements[n] for n in self._less[a.name]]

    def covers(self, lower: Mechanism, higher: Mechanism) -> bool:
        """True if ``higher`` covers ``lower`` (no element in between).

        The covering relation is what a Hasse diagram draws as edges.
        """
        if lower == higher or not self.leq(lower, higher):
            return False
        for mid in self._elements.values():
            if mid in (lower, higher):
                continue
            if self.leq(lower, mid) and self.leq(mid, higher):
                return False
        return True

    def hasse_edges(self) -> List[Tuple[Mechanism, Mechanism]]:
        """All covering pairs (lower, higher), for rendering Figure 2."""
        edges = []
        for a in self._elements.values():
            for b in self._elements.values():
                if self.covers(a, b):
                    edges.append((a, b))
        return edges

    def minimal_elements(self) -> List[Mechanism]:
        return [m for m in self._elements.values()
                if not self.strictly_below(m)]

    def maximal_elements(self) -> List[Mechanism]:
        return [m for m in self._elements.values()
                if not self._less[m.name]]

    def lower(self, mechanism: Mechanism) -> Optional[Mechanism]:
        """One implicit-lowering step: the greatest element strictly below.

        Returns ``None`` at the bottom of the poset.  When several
        incomparable elements sit below, the one with the highest
        protection level (then lowest cost) is chosen deterministically.
        """
        below = self.strictly_below(mechanism)
        candidates = [m for m in below if self.covers(m, mechanism)]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda m: (m.level, -m.engage_cost_cycles, m.name))

    def render_hasse(self) -> str:
        """ASCII rendering of the Hasse diagram, top level first."""
        by_level: Dict[int, List[str]] = {}
        for m in self._elements.values():
            by_level.setdefault(int(m.level), []).append(m.name)
        lines = []
        for level in sorted(by_level, reverse=True):
            lines.append(f"  L{level}: " + "  ".join(sorted(by_level[level])))
        edge_lines = [f"  {lo.name} < {hi.name}" for lo, hi in self.hasse_edges()]
        return "levels:\n" + "\n".join(lines) + "\ncovers:\n" + "\n".join(edge_lines)
