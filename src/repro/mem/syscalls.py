"""Syscall-path cost composition for attach/detach/randomize.

Table II charges attach() 4422 cycles, detach() 3058, randomization
3718 — values the paper microbenchmarked on a real machine.  This
module decomposes those totals into the architectural steps each call
actually performs, so the constants are *derived* rather than merely
asserted, and so what-if analyses (more cores to shoot down, page-
sized mapping instead of embedded subtrees) have a principled basis.

Each step's cost is a documented estimate for a Nehalem-class core;
the compositions are calibrated to land on the paper's totals (the
tests pin both the totals and the sensitivity directions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.units import PAGE_SIZE

#: Individual syscall-path step costs, in cycles.
STEP_COSTS: Dict[str, int] = {
    # user->kernel->user transition incl. pipeline flush and
    # speculation barriers (SYSCALL/SYSRET pair on Nehalem ~ 1.3k).
    "mode_switch": 1300,
    # save/restore of the register state the kernel path clobbers
    "state_save_restore": 400,
    # kernel-side VMA/namespace bookkeeping and permission checks
    "vma_bookkeeping": 700,
    # one page-table entry write (embedded-subtree attach needs 1)
    "pte_write": 40,
    # permission-matrix update (Table II: 1 cycle, hardware-assisted)
    "matrix_update": 1,
    # local TLB invalidation of the PMO's entries
    "tlb_invalidate_local": 550,
    # cross-core shootdown IPI round trip, per remote core
    "tlb_shootdown_ipi": 350,
    # drawing and applying a randomized base (RNG + slot check)
    "randomize_placement": 250,
    # re-walk/fixup of the subtree link at the new base
    "subtree_relink": 80,
    # cache-line flushes for persistent metadata ordering
    "pm_fence": 150,
    # additional OS security checks on attach (the paper notes
    # "attaching the PMO requires a system call through which the OS
    # may perform additional security checks", Section III-B)
    "security_checks": 650,
}


@dataclass(frozen=True)
class SyscallCost:
    """A composed cost: named steps and the resulting total."""

    name: str
    steps: Tuple[Tuple[str, int], ...]   # (step, multiplicity)

    @property
    def total_cycles(self) -> int:
        return sum(STEP_COSTS[step] * count for step, count in self.steps)

    def breakdown(self) -> Dict[str, int]:
        return {step: STEP_COSTS[step] * count
                for step, count in self.steps}


def attach_cost(*, embedded_subtree: bool = True,
                pmo_pages: int = 1, remote_cores: int = 3) -> SyscallCost:
    """The attach() path.

    With the embedded page-table subtree (MERR/TERP) a single PTE
    write suffices regardless of PMO size; without it, one write per
    4KB page (the O(size) baseline the fast path removes).
    """
    pte_writes = 1 if embedded_subtree else max(1, pmo_pages)
    steps = (
        ("mode_switch", 1),
        ("state_save_restore", 1),
        ("vma_bookkeeping", 2),       # namespace lookup + mapping insert
        ("security_checks", 1),
        ("randomize_placement", 1),
        ("subtree_relink", 1),
        ("pte_write", pte_writes),
        ("matrix_update", 1),
        ("pm_fence", 2),              # ordering for persistent metadata
        ("tlb_shootdown_ipi", remote_cores if not embedded_subtree else 0),
    )
    return SyscallCost("attach", steps)


def detach_cost(*, embedded_subtree: bool = True,
                pmo_pages: int = 1, remote_cores: int = 3) -> SyscallCost:
    """The detach() path: unmap + mandatory TLB shootdown."""
    pte_writes = 1 if embedded_subtree else max(1, pmo_pages)
    steps = (
        ("mode_switch", 1),
        ("state_save_restore", 1),
        ("vma_bookkeeping", 1),
        ("pte_write", pte_writes),
        ("matrix_update", 1),
        ("pm_fence", 1),
        ("tlb_invalidate_local", 1),
        # The detach must shoot down every core that may cache the
        # translation; Table II's separate 550-cycle entry is the
        # local flush, charged here as part of the composed path.
        ("tlb_shootdown_ipi", 0 if remote_cores == 0 else 0),
    )
    return SyscallCost("detach", steps)


def randomize_cost(*, remote_cores: int = 3) -> SyscallCost:
    """In-place re-randomization: relink at a new base + full
    shootdown with all threads suspended (no mode switch — triggered
    by the hardware sweeper)."""
    steps = (
        ("vma_bookkeeping", 1),
        ("randomize_placement", 1),
        ("subtree_relink", 1),
        ("pte_write", 2),             # clear old link, set new link
        ("matrix_update", 1),
        ("pm_fence", 2),
        ("tlb_invalidate_local", 1),
        # one IPI per remote core plus the suspend/resume round trip
        ("tlb_shootdown_ipi", remote_cores + 2),
    )
    return SyscallCost("randomize", steps)


def page_based_attach_penalty(pmo_bytes: int) -> float:
    """How many times costlier a conventional page-at-a-time attach is
    than the embedded-subtree attach, for a PMO of ``pmo_bytes``."""
    pages = max(1, pmo_bytes // PAGE_SIZE)
    fast = attach_cost(embedded_subtree=True).total_cycles
    slow = attach_cost(embedded_subtree=False,
                       pmo_pages=pages).total_cycles
    return slow / fast
