"""A process address space: mappings, randomization, access checks.

This is the OS-facing composition point of the memory substrate: one
:class:`AddressSpace` owns a process page table, a MERR permission
matrix, and the MPK protection domains, and provides the operations
the TERP runtime needs:

* ``attach`` — map a PMO at a randomized base address (O(1) via the
  embedded subtree), add a permission-matrix entry, and assign a
  protection domain;
* ``detach`` — remove mapping, matrix entry, and domain;
* ``randomize`` — relocate the PMO to a fresh random base (the
  re-randomization that runs when an EW target expires while threads
  still hold access);
* ``translate``/``check_access`` — the per-load/store MMU path.

Randomization draws from a deterministic ``numpy`` generator.  The
candidate slot count for a PMO is exposed (:meth:`slots_for`) because
the security analysis (Table V) needs the entropy of the placement.

Any PMO-like object with ``pmo_id``, ``size_bytes`` and ``subtree``
attributes can be attached, keeping this module independent of the
:mod:`repro.pmo` package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.errors import SegmentationFault, TerpError
from repro.core.permissions import Access
from repro.mem.mpk import ProtectionDomains
from repro.mem.page_table import (
    ENTRIES_PER_NODE, ENTRY_SPAN, Frame, PageTable, VA_SPAN, index_at_level)
from repro.mem.permission_matrix import PermissionMatrix


@dataclass
class Mapping:
    """One attached PMO: where it sits and how it may be used."""

    pmo_id: Hashable
    base_va: int
    size_bytes: int
    subtree_level: int
    permission: Access


class AddressSpace:
    """The virtual address space of one simulated process."""

    #: Mappings are placed in the lower half of the canonical range,
    #: mirroring a user-space mmap area.
    REGION_BASE = 0
    REGION_END = VA_SPAN

    def __init__(self, *, rng: Optional[np.random.Generator] = None) -> None:
        self.page_table = PageTable()
        self.matrix = PermissionMatrix()
        self.domains = ProtectionDomains()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mappings: Dict[Hashable, Mapping] = {}
        self.attach_count = 0
        self.detach_count = 0
        self.randomize_count = 0

    # -- placement ---------------------------------------------------------

    def alignment_for(self, subtree_level: int) -> int:
        """Base-VA alignment required by an embedded subtree."""
        return ENTRY_SPAN[subtree_level] * ENTRIES_PER_NODE

    def slots_for(self, subtree_level: int) -> int:
        """Number of candidate base addresses for a subtree of this level.

        This is the placement entropy available to randomization: a 1GB
        PMO (level-2 subtree) has REGION span / 1GB candidate slots.
        """
        align = self.alignment_for(subtree_level)
        return (self.REGION_END - self.REGION_BASE) // align

    def _pick_base(self, subtree_level: int) -> int:
        align = self.alignment_for(subtree_level)
        slots = self.slots_for(subtree_level)
        taken = {m.base_va for m in self._mappings.values()}
        # Rejection-sample a free slot; with thousands of slots and a
        # handful of PMOs this terminates almost immediately.
        for _ in range(10_000):
            slot = int(self.rng.integers(0, slots))
            base = self.REGION_BASE + slot * align
            if base not in taken and not self._overlaps(base, align):
                return base
        raise TerpError("could not find a free randomized slot")

    def _overlaps(self, base: int, span: int) -> bool:
        for m in self._mappings.values():
            if base < m.base_va + m.size_bytes and m.base_va < base + span:
                return True
        return False

    # -- attach / detach ------------------------------------------------------

    def attach(self, pmo, permission: Access) -> Mapping:
        """Map ``pmo`` at a random base; returns the new Mapping."""
        if pmo.pmo_id in self._mappings:
            raise TerpError(f"PMO {pmo.pmo_id!r} already attached")
        level = pmo.subtree.level
        base = self._pick_base(level)
        self.page_table.install_subtree(base, pmo.subtree)
        self.matrix.add(pmo.pmo_id, base, pmo.size_bytes, permission)
        self.domains.assign(pmo.pmo_id)
        mapping = Mapping(pmo.pmo_id, base, pmo.size_bytes, level, permission)
        self._mappings[pmo.pmo_id] = mapping
        self.attach_count += 1
        return mapping

    def detach(self, pmo_id: Hashable) -> Mapping:
        mapping = self._mappings.pop(pmo_id, None)
        if mapping is None:
            raise TerpError(f"PMO {pmo_id!r} is not attached")
        self.page_table.remove_subtree(mapping.base_va, mapping.subtree_level)
        self.matrix.remove(pmo_id)
        self.domains.release(pmo_id)
        self.detach_count += 1
        return mapping

    def randomize(self, pmo_id: Hashable) -> Mapping:
        """Relocate an attached PMO to a fresh random base address."""
        mapping = self._mappings.get(pmo_id)
        if mapping is None:
            raise TerpError(f"PMO {pmo_id!r} is not attached")
        subtree_parent = self.page_table._node_at(
            mapping.base_va, mapping.subtree_level + 1)
        subtree = subtree_parent.lookup(
            index_at_level(mapping.base_va, mapping.subtree_level + 1))
        self.page_table.remove_subtree(mapping.base_va, mapping.subtree_level)
        new_base = self._pick_base(mapping.subtree_level)
        self.page_table.install_subtree(new_base, subtree)
        self.matrix.relocate(pmo_id, new_base)
        mapping.base_va = new_base
        self.randomize_count += 1
        return mapping

    # -- queries -----------------------------------------------------------

    def mapping_of(self, pmo_id: Hashable) -> Optional[Mapping]:
        return self._mappings.get(pmo_id)

    def is_attached(self, pmo_id: Hashable) -> bool:
        return pmo_id in self._mappings

    def attached(self) -> List[Mapping]:
        return list(self._mappings.values())

    def va_of(self, pmo_id: Hashable, offset: int) -> int:
        """Current virtual address of ``offset`` within the PMO."""
        mapping = self._mappings.get(pmo_id)
        if mapping is None:
            raise SegmentationFault(
                f"PMO {pmo_id!r} not attached", pmo_id=pmo_id)
        if not 0 <= offset < mapping.size_bytes:
            raise TerpError(f"offset {offset} outside PMO {pmo_id!r}")
        return mapping.base_va + offset

    # -- the MMU path ---------------------------------------------------------

    def translate(self, va: int) -> Frame:
        frame = self.page_table.walk(va)
        if frame is None:
            raise SegmentationFault(f"no mapping for VA {va:#x}")
        return frame

    def check_access(self, thread_id: int, va: int,
                     requested: Access) -> bool:
        """Full access check: page table + permission matrix + MPK.

        Mirrors the hardware path: translation must exist, the
        process-wide matrix must allow the access, and the thread's
        PKRU must allow the PMO's protection key.
        """
        if self.page_table.walk(va) is None:
            return False
        entry = self.matrix.lookup_va(va)
        if entry is None or not entry.permission.allows(requested):
            return False
        return self.domains.allows(thread_id, entry.pmo_id, requested)
