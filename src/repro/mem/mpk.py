"""Intel-MPK-style per-thread protection domains.

TERP's architecture support "assumes that each attached PMO is
assigned its own protection domain using support such as Intel MPK,
which allows per-thread access control" (Section V-B).  This module
models that substrate:

* 16 protection keys (domain 0 is the default, always accessible);
* each thread owns a PKRU register with two bits per key —
  access-disable (AD) and write-disable (WD);
* writing the PKRU is a cheap user-level operation (the paper charges
  27 cycles for a silent conditional attach/detach, measured as the
  average Intel MPK permission-set time including fences).

The weaker protection of this level in the TERP poset is visible in
the API: :meth:`Pkru.set` needs no privilege, exactly why a
process-wide detach (mapping removal) is the stronger mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.core.errors import TerpError
from repro.core.permissions import Access

NUM_KEYS = 16
DEFAULT_KEY = 0


@dataclass
class Pkru:
    """One thread's protection-key rights register.

    Stored as the hardware would: 2 bits per key.  Bit semantics follow
    Intel: AD=1 blocks all access, WD=1 blocks writes.
    """

    value: int = 0

    def set(self, key: int, access: Access) -> None:
        """Program rights for ``key`` from an Access request."""
        _check_key(key)
        ad = 0 if access & Access.READ else 1
        wd = 0 if access & Access.WRITE else 1
        shift = 2 * key
        self.value = (self.value & ~(0b11 << shift)) | ((wd << 1 | ad) << shift)

    def revoke(self, key: int) -> None:
        """Deny all access to ``key`` (AD=1, WD=1)."""
        _check_key(key)
        shift = 2 * key
        self.value |= 0b11 << shift

    def allows(self, key: int, requested: Access) -> bool:
        _check_key(key)
        shift = 2 * key
        ad = (self.value >> shift) & 1
        wd = (self.value >> (shift + 1)) & 1
        if ad and requested & (Access.READ | Access.WRITE):
            return False
        if wd and requested & Access.WRITE:
            return False
        return True

    def granted(self, key: int) -> Access:
        """The Access this PKRU grants for ``key``."""
        acc = Access.NONE
        if self.allows(key, Access.READ):
            acc |= Access.READ
        if self.allows(key, Access.WRITE):
            acc |= Access.WRITE
        return acc


def _check_key(key: int) -> None:
    if not 0 <= key < NUM_KEYS:
        raise TerpError(f"protection key {key} out of range 0..{NUM_KEYS - 1}")


class ProtectionDomains:
    """Allocates protection keys to PMOs and tracks per-thread PKRUs."""

    def __init__(self) -> None:
        self._key_of: Dict[Hashable, int] = {}
        self._free = list(range(1, NUM_KEYS))  # key 0 reserved as default
        self._pkru: Dict[int, Pkru] = {}
        self.pkru_writes = 0

    # -- domain allocation ------------------------------------------------

    def assign(self, pmo_id: Hashable) -> int:
        """Assign a protection key to an attached PMO."""
        if pmo_id in self._key_of:
            return self._key_of[pmo_id]
        if not self._free:
            raise TerpError("out of protection keys (16 domains)")
        key = self._free.pop(0)
        self._key_of[pmo_id] = key
        return key

    def release(self, pmo_id: Hashable) -> None:
        """Return the PMO's key to the pool (on real detach).

        Every thread's rights for the key are revoked first so a stale
        PKRU cannot leak access to the key's next owner.
        """
        key = self._key_of.pop(pmo_id, None)
        if key is None:
            return
        for pkru in self._pkru.values():
            pkru.revoke(key)
        self._free.append(key)
        self._free.sort()

    def key_of(self, pmo_id: Hashable) -> Optional[int]:
        return self._key_of.get(pmo_id)

    # -- per-thread rights --------------------------------------------------

    def pkru_of(self, thread_id: int) -> Pkru:
        pkru = self._pkru.get(thread_id)
        if pkru is None:
            # New threads start with all non-default keys denied: a
            # thread that never attached gets nothing (Figure 4,
            # thread 3).
            pkru = Pkru()
            for key in range(1, NUM_KEYS):
                pkru.revoke(key)
            self._pkru[thread_id] = pkru
        return pkru

    def grant(self, thread_id: int, pmo_id: Hashable, access: Access) -> None:
        key = self._require_key(pmo_id)
        self.pkru_of(thread_id).set(key, access)
        self.pkru_writes += 1

    def revoke(self, thread_id: int, pmo_id: Hashable) -> None:
        key = self._require_key(pmo_id)
        self.pkru_of(thread_id).revoke(key)
        self.pkru_writes += 1

    def allows(self, thread_id: int, pmo_id: Hashable,
               requested: Access) -> bool:
        key = self._key_of.get(pmo_id)
        if key is None:
            return False
        return self.pkru_of(thread_id).allows(key, requested)

    def _require_key(self, pmo_id: Hashable) -> int:
        key = self._key_of.get(pmo_id)
        if key is None:
            raise TerpError(f"PMO {pmo_id!r} has no protection domain")
        return key
