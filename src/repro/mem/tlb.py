"""Set-associative TLB models (Table II: L1 DTLB and L2 TLB).

The TLB caches page translations.  Its role in the reproduction is
twofold: it supplies hit/miss timing to the simulator (L1 4-way 64
entries 1 cycle; L2 6-way 1536 entries 4 cycles; 30-cycle miss
penalty), and it is the structure that attach/detach must *shoot down*
— the paper charges 550 cycles per TLB invalidation, and window
combining exists largely to avoid those shootdowns.

Replacement is LRU within a set.  Translations are symbolic (we cache
the page number only); permission checking lives in the permission
matrix and MPK models, as in the paper's design where the matrix check
happens alongside the TLB lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.units import PAGE_SIZE


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    shootdowns: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Tlb:
    """One TLB level: ``entries`` total slots, ``ways`` associativity."""

    def __init__(self, entries: int, ways: int, name: str = "tlb") -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.name = name
        self.ways = ways
        self.num_sets = entries // ways
        #: each set is an LRU-ordered mapping page -> owner tag
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.num_sets)]
        self.stats = TlbStats()

    def _set_for(self, page: int) -> OrderedDict:
        return self._sets[page % self.num_sets]

    def lookup(self, va: int) -> bool:
        """True on hit; updates LRU and stats."""
        page = va // PAGE_SIZE
        entries = self._set_for(page)
        if page in entries:
            entries.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, va: int, owner: str = "") -> None:
        """Insert a translation after a walk, evicting LRU if needed."""
        page = va // PAGE_SIZE
        entries = self._set_for(page)
        if page in entries:
            entries.move_to_end(page)
            return
        if len(entries) >= self.ways:
            entries.popitem(last=False)
        entries[page] = owner

    def invalidate_page(self, va: int) -> bool:
        page = va // PAGE_SIZE
        entries = self._set_for(page)
        if page in entries:
            del entries[page]
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_owner(self, owner: str) -> int:
        """Invalidate all translations tagged with ``owner`` (a PMO id).

        This is the per-PMO shootdown a detach or randomization incurs.
        """
        removed = 0
        for entries in self._sets:
            stale = [page for page, tag in entries.items() if tag == owner]
            for page in stale:
                del entries[page]
                removed += 1
        self.stats.invalidations += removed
        self.stats.shootdowns += 1
        return removed

    def flush(self) -> int:
        removed = sum(len(s) for s in self._sets)
        for entries in self._sets:
            entries.clear()
        self.stats.invalidations += removed
        self.stats.shootdowns += 1
        return removed

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class TlbHierarchy:
    """L1 + L2 TLB with the Table II geometry and latencies.

    :meth:`access` returns the latency in cycles for translating ``va``
    and keeps both levels consistent.  A miss in both levels costs the
    walk penalty and fills both.
    """

    L1_LATENCY = 1
    L2_LATENCY = 4
    MISS_PENALTY = 30

    def __init__(self) -> None:
        self.l1 = Tlb(entries=64, ways=4, name="L1-DTLB")
        self.l2 = Tlb(entries=1536, ways=6, name="L2-TLB")

    def access(self, va: int, owner: str = "") -> int:
        if self.l1.lookup(va):
            return self.L1_LATENCY
        if self.l2.lookup(va):
            self.l1.fill(va, owner)
            return self.L1_LATENCY + self.L2_LATENCY
        self.l1.fill(va, owner)
        self.l2.fill(va, owner)
        return self.L1_LATENCY + self.L2_LATENCY + self.MISS_PENALTY

    def invalidate_owner(self, owner: str) -> int:
        return self.l1.invalidate_owner(owner) + \
            self.l2.invalidate_owner(owner)

    def flush(self) -> int:
        return self.l1.flush() + self.l2.flush()
