"""The MERR process-wide permission matrix (Figure 1b).

The embedded-page-table trick cannot discern per-process permissions,
so MERR adds a small hardware table mapping VA range -> permission for
the attached PMOs of the current process.  Every ld/st checks it
alongside the TLB (1 extra cycle in Table II).

``attach(pmo, va, perm)`` adds an entry; ``detach(pmo)`` removes it.
The matrix is process-wide: it knows nothing about threads — that is
exactly the gap TERP's thread permissions (:mod:`repro.mem.mpk`) fill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.core.errors import TerpError
from repro.core.permissions import Access


@dataclass
class MatrixEntry:
    pmo_id: Hashable
    base_va: int
    size: int
    permission: Access

    def covers(self, va: int) -> bool:
        return self.base_va <= va < self.base_va + self.size


class PermissionMatrix:
    """Process-wide VA-range -> permission table with a capacity limit.

    Real hardware would bound the number of simultaneously attached
    PMOs; we default to 32 entries, matching the circular buffer.
    """

    CHECK_COST_CYCLES = 1  # Table II: permission matrix check/update

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._entries: Dict[Hashable, MatrixEntry] = {}
        self.checks = 0
        self.updates = 0

    def add(self, pmo_id: Hashable, base_va: int, size: int,
            permission: Access) -> MatrixEntry:
        if pmo_id in self._entries:
            raise TerpError(f"PMO {pmo_id!r} already in permission matrix")
        if len(self._entries) >= self.capacity:
            raise TerpError("permission matrix full")
        for other in self._entries.values():
            if (base_va < other.base_va + other.size
                    and other.base_va < base_va + size):
                raise TerpError(
                    f"VA range overlaps entry for PMO {other.pmo_id!r}")
        entry = MatrixEntry(pmo_id, base_va, size, permission)
        self._entries[pmo_id] = entry
        self.updates += 1
        return entry

    def remove(self, pmo_id: Hashable) -> MatrixEntry:
        try:
            entry = self._entries.pop(pmo_id)
        except KeyError:
            raise TerpError(f"PMO {pmo_id!r} not in permission matrix") from None
        self.updates += 1
        return entry

    def relocate(self, pmo_id: Hashable, new_base_va: int) -> None:
        """Move an entry's VA range (randomization re-maps the PMO)."""
        entry = self._entries.get(pmo_id)
        if entry is None:
            raise TerpError(f"PMO {pmo_id!r} not in permission matrix")
        entry.base_va = new_base_va
        self.updates += 1

    def lookup_va(self, va: int) -> Optional[MatrixEntry]:
        self.checks += 1
        for entry in self._entries.values():
            if entry.covers(va):
                return entry
        return None

    def check(self, va: int, requested: Access) -> bool:
        """The per-access check: is ``requested`` allowed at ``va``?"""
        entry = self.lookup_va(va)
        return entry is not None and entry.permission.allows(requested)

    def entry_for(self, pmo_id: Hashable) -> Optional[MatrixEntry]:
        return self._entries.get(pmo_id)

    def attached_pmos(self) -> List[Hashable]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
