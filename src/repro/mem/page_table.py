"""Multi-level page tables with embeddable PMO subtrees (Figure 1a).

The substrate models an x86-64-style radix page table: each level
indexes 9 bits of the virtual address, leaves map 4KB pages.  The root
(like the PML4) sits at level 4, so the user VA span is 256 TiB.

The MERR/TERP trick reproduced here: a PMO carries its own *page-table
subtree* as persistent metadata.  Attaching the PMO to a process means
installing a single entry in the process's table that points at the
PMO's subtree root — O(1) PTE writes instead of one per 4KB page.
Detaching removes that entry.  :class:`PageTable` counts PTE writes so
the cost difference is measurable (and tested).

"Physical" frames are symbolic ``Frame`` tuples — enough for a
functional MMU and deliberately free of real storage concerns.

Level convention: a node at level *N* (1 <= N <= 4) is indexed by VA
bits ``[12 + 9*(N-1), 12 + 9*N)``.  Entries of a level-1 node are
:class:`Frame` leaves; entries of higher nodes are child nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.core.errors import TerpError
from repro.core.units import PAGE_SIZE

BITS_PER_LEVEL = 9
ENTRIES_PER_NODE = 1 << BITS_PER_LEVEL
PAGE_SHIFT = 12  # 4KB pages
#: The root node's level (PML4-equivalent).
ROOT_LEVEL = 4
#: VA span covered by ONE ENTRY of a node at level N (index by level).
ENTRY_SPAN = {level: PAGE_SIZE * (ENTRIES_PER_NODE ** (level - 1))
              for level in range(1, ROOT_LEVEL + 1)}
#: Total VA span of the whole table (256 TiB).
VA_SPAN = ENTRY_SPAN[ROOT_LEVEL] * ENTRIES_PER_NODE


@dataclass(frozen=True)
class Frame:
    """A symbolic physical frame: which PMO (or anon region) and page."""

    owner: str
    page_index: int


def index_at_level(va: int, level: int) -> int:
    """The entry index ``va`` selects within a node at ``level``."""
    return (va >> (PAGE_SHIFT + BITS_PER_LEVEL * (level - 1))) \
        & (ENTRIES_PER_NODE - 1)


class PageTableNode:
    """One page-table page: up to 512 entries, children or Frames."""

    __slots__ = ("level", "entries")

    def __init__(self, level: int) -> None:
        if not 1 <= level <= ROOT_LEVEL:
            raise TerpError(f"invalid page-table level {level}")
        self.level = level
        self.entries: Dict[int, object] = {}

    def lookup(self, index: int):
        return self.entries.get(index)

    def set(self, index: int, value) -> None:
        if not 0 <= index < ENTRIES_PER_NODE:
            raise TerpError(f"page-table index {index} out of range")
        self.entries[index] = value

    def clear(self, index: int) -> None:
        self.entries.pop(index, None)

    def populated(self) -> int:
        return len(self.entries)


def subtree_level_for(size_bytes: int) -> int:
    """Smallest level whose single node spans ``size_bytes``.

    A 128KB PMO fits in one level-1 node (2MB span); a 1GB PMO needs a
    level-2 node (1GB span).
    """
    if size_bytes <= 0:
        raise TerpError("PMO size must be positive")
    level = 1
    while ENTRY_SPAN[level] * ENTRIES_PER_NODE < size_bytes:
        level += 1
        if level >= ROOT_LEVEL:
            raise TerpError(f"PMO of {size_bytes} bytes too large to embed")
    return level


def build_subtree(owner: str, size_bytes: int) -> PageTableNode:
    """Build a PMO-embedded page-table subtree covering ``size_bytes``.

    The subtree's leaves map every page of the PMO to its own frames —
    this is the persistent metadata MERR embeds inside the PMO.
    """
    level = subtree_level_for(size_bytes)
    num_pages = (size_bytes + PAGE_SIZE - 1) // PAGE_SIZE
    root = PageTableNode(level)

    def fill(node: PageTableNode, first_page: int) -> None:
        pages_per_entry = ENTRY_SPAN[node.level] // PAGE_SIZE
        for idx in range(ENTRIES_PER_NODE):
            start = first_page + idx * pages_per_entry
            if start >= num_pages:
                break
            if node.level == 1:
                node.set(idx, Frame(owner, start))
            else:
                child = PageTableNode(node.level - 1)
                fill(child, start)
                node.set(idx, child)

    fill(root, 0)
    return root


class LazySubtreeNode(PageTableNode):
    """A PMO subtree node that materializes children on first lookup.

    Functionally identical to the eager tree from :func:`build_subtree`
    but O(1) to construct — important because a 1GB PMO otherwise costs
    ~262K Frame objects before a single access happens.
    """

    __slots__ = ("owner", "first_page", "num_pages")

    def __init__(self, owner: str, level: int, first_page: int,
                 num_pages: int) -> None:
        super().__init__(level)
        self.owner = owner
        self.first_page = first_page
        self.num_pages = num_pages

    def lookup(self, index: int):
        entry = self.entries.get(index)
        if entry is not None:
            return entry
        pages_per_entry = ENTRY_SPAN[self.level] // PAGE_SIZE
        start = self.first_page + index * pages_per_entry
        if start >= self.first_page + self.num_pages or index >= ENTRIES_PER_NODE:
            return None
        if self.level == 1:
            entry = Frame(self.owner, start)
        else:
            remaining = self.first_page + self.num_pages - start
            entry = LazySubtreeNode(self.owner, self.level - 1, start,
                                    min(pages_per_entry, remaining))
        self.entries[index] = entry
        return entry

    def populated(self) -> int:
        """Logical entry count (as if fully materialized)."""
        pages_per_entry = ENTRY_SPAN[self.level] // PAGE_SIZE
        return min(ENTRIES_PER_NODE,
                   -(-self.num_pages // pages_per_entry))


def build_subtree_lazy(owner: str, size_bytes: int) -> LazySubtreeNode:
    """Like :func:`build_subtree` but O(1); used for large PMOs."""
    level = subtree_level_for(size_bytes)
    num_pages = (size_bytes + PAGE_SIZE - 1) // PAGE_SIZE
    return LazySubtreeNode(owner, level, 0, num_pages)


class PageTable:
    """A process page table supporting both mapping styles.

    * :meth:`map_pages` / :meth:`unmap_pages` — conventional per-page
      mapping: O(pages) PTE writes (what a plain mmap-style attach
      costs; the baseline MERR improves on).
    * :meth:`install_subtree` / :meth:`remove_subtree` — O(1)
      embedded-subtree attach used by MERR and TERP.

    ``pte_writes`` accumulates the number of PTE updates performed, the
    quantity the fast-attach design minimizes.
    """

    def __init__(self) -> None:
        self.root = PageTableNode(ROOT_LEVEL)
        self.pte_writes = 0

    # -- walking ------------------------------------------------------

    def walk(self, va: int) -> Optional[Frame]:
        """Resolve a VA to a Frame, or None if unmapped."""
        if not 0 <= va < VA_SPAN:
            return None
        node = self.root
        while True:
            entry = node.lookup(index_at_level(va, node.level))
            if entry is None:
                return None
            if isinstance(entry, Frame):
                return entry
            node = entry

    def is_mapped(self, va: int) -> bool:
        return self.walk(va) is not None

    # -- conventional mapping ------------------------------------------

    def map_pages(self, base_va: int, owner: str, num_pages: int) -> int:
        """Map ``num_pages`` pages one PTE at a time. Returns PTE writes."""
        if base_va % PAGE_SIZE:
            raise TerpError("base VA must be page aligned")
        writes = 0
        for page in range(num_pages):
            va = base_va + page * PAGE_SIZE
            node = self._ensure_path(va, 1)
            idx = index_at_level(va, 1)
            if node.lookup(idx) is not None:
                raise TerpError(f"page at {va:#x} already mapped")
            node.set(idx, Frame(owner, page))
            writes += 1
        self.pte_writes += writes
        return writes

    def unmap_pages(self, base_va: int, num_pages: int) -> int:
        writes = 0
        for page in range(num_pages):
            va = base_va + page * PAGE_SIZE
            node = self._node_at(va, 1)
            if node is not None and node.lookup(index_at_level(va, 1)) is not None:
                node.clear(index_at_level(va, 1))
                writes += 1
        self.pte_writes += writes
        return writes

    # -- embedded-subtree mapping ---------------------------------------

    def install_subtree(self, base_va: int, subtree: PageTableNode) -> int:
        """Install a PMO subtree at ``base_va``; O(1) PTE writes.

        ``base_va`` must be aligned to the subtree's span so the whole
        subtree hangs off a single parent entry (this is what makes the
        attach constant-time).
        """
        span = ENTRY_SPAN[subtree.level] * ENTRIES_PER_NODE
        if base_va % span:
            raise TerpError(
                f"base VA {base_va:#x} not aligned to subtree span {span:#x}")
        parent = self._ensure_path(base_va, subtree.level + 1)
        idx = index_at_level(base_va, subtree.level + 1)
        if parent.lookup(idx) is not None:
            raise TerpError(f"VA {base_va:#x} already mapped")
        parent.set(idx, subtree)
        self.pte_writes += 1
        return 1

    def remove_subtree(self, base_va: int, subtree_level: int) -> int:
        parent = self._node_at(base_va, subtree_level + 1)
        idx = index_at_level(base_va, subtree_level + 1)
        if parent is None or parent.lookup(idx) is None:
            raise TerpError(f"no subtree mapped at {base_va:#x}")
        parent.clear(idx)
        self.pte_writes += 1
        return 1

    # -- internals ------------------------------------------------------

    def _ensure_path(self, va: int, target_level: int) -> PageTableNode:
        """Descend (creating intermediate nodes) to the node at
        ``target_level`` on the path of ``va``."""
        node = self.root
        while node.level > target_level:
            idx = index_at_level(va, node.level)
            child = node.lookup(idx)
            if child is None:
                child = PageTableNode(node.level - 1)
                node.set(idx, child)
                self.pte_writes += 1
            elif isinstance(child, Frame):
                raise TerpError("cannot descend through a mapped frame")
            node = child
        return node

    def _node_at(self, va: int, target_level: int) -> Optional[PageTableNode]:
        node = self.root
        while node.level > target_level:
            child = node.lookup(index_at_level(va, node.level))
            if child is None or isinstance(child, Frame):
                return None
            node = child
        return node

    def mapped_pages(self) -> Iterator[Tuple[int, Frame]]:
        """Yield (va, frame) for every mapped page — test/debug helper."""

        def rec(node: PageTableNode, va_base: int):
            span = ENTRY_SPAN[node.level]
            for idx, entry in sorted(node.entries.items()):
                va = va_base + idx * span
                if isinstance(entry, Frame):
                    yield va, entry
                else:
                    yield from rec(entry, va)

        yield from rec(self.root, 0)
