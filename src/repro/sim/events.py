"""The workload event vocabulary.

A simulated thread is a Python generator yielding these events.  The
vocabulary deliberately separates *work* from *protection*: workloads
describe computation, PMO access bursts, and logical operation
boundaries (transactions); attach/detach insertion is the job of the
configured :mod:`insertion policy <repro.sim.policy>`, exactly as in
the paper where MERR relies on the programmer and TERP on the
compiler.

Events:

``Compute(ns)``
    Core-local computation (includes non-PMO memory time).

``Burst(pmo, n_accesses, unique_pages, write_fraction, base_cycles)``
    A cluster of PMO accesses — the unit the region analysis wraps in
    one thread exposure window.  ``base_cycles`` is the unprotected
    per-access cost (cache/NVM mix); protection adds matrix checks and
    post-shootdown TLB misses on top.

``TxBegin(pmos)`` / ``TxEnd()``
    A logical operation boundary (one WHISPER transaction, one SPEC
    phase chunk).  These are where a programmer would bookend
    attach/detach — MERR's manual insertion uses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class Compute:
    """Pure computation for ``ns`` nanoseconds of baseline time."""

    ns: int


@dataclass(frozen=True)
class Burst:
    """A cluster of accesses to one PMO.

    The burst is atomic from the insertion policy's point of view: a
    thread exposure window never splits a burst (mirroring that a code
    region with PMO accesses is the smallest unit the compiler wraps).
    """

    pmo: str
    n_accesses: int
    unique_pages: int = 1
    write_fraction: float = 0.5
    #: Unprotected cycles per access (L1-hit-dominated by default).
    base_cycles: float = 2.0

    @property
    def reads(self) -> int:
        return self.n_accesses - self.writes

    @property
    def writes(self) -> int:
        return int(self.n_accesses * self.write_fraction)


@dataclass(frozen=True)
class TxBegin:
    """Start of a logical operation touching the named PMOs."""

    pmos: Tuple[str, ...]

    @classmethod
    def of(cls, *pmos: str) -> "TxBegin":
        return cls(tuple(pmos))


@dataclass(frozen=True)
class TxEnd:
    """End of the current logical operation."""


@dataclass(frozen=True)
class RegionEnd:
    """End of a PMO-access code region.

    Marks the post-dominator of a PMO-WFG region (Section V-A): the
    point where the compiler statically knows no further PMO accesses
    follow for a while, and therefore inserts the conditional detach.
    Workload generators emit it after each access cluster.
    """


WorkEvent = (Compute, Burst, TxBegin, TxEnd, RegionEnd)
