"""Attach/detach insertion policies.

A policy is an online state machine fed one thread's work events; it
decides where attach and detach calls go.  Two policies reproduce the
paper's configurations:

:class:`ManualMerrPolicy`
    MERR's manual insertion (MM): the programmer bookends logical
    operations.  Consecutive transactions are grouped under one
    attach/detach pair until the accumulated window would exceed the
    EW target — so window lengths track transaction durations and are
    unstable (the Table III observation: avg far below max).

:class:`CompilerTerpPolicy`
    TERP's automatic insertion (TM/TT): conditional attach before a
    burst and conditional detach as soon as the open thread window
    would exceed the TEW target at the next region boundary.  The
    result is many short, tightly bounded thread windows — cheap under
    the TERP architecture, expensive if each call is a syscall (TM).

Policies return :class:`Op` directives; the machine executes them
against the semantics engine and charges costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.permissions import Access
from repro.sim.events import Burst, Compute, RegionEnd, TxBegin, TxEnd


class OpKind(enum.Enum):
    ATTACH = "attach"
    DETACH = "detach"


@dataclass(frozen=True)
class Op:
    kind: OpKind
    pmo: str
    access: Access = Access.RW


class InsertionPolicy:
    """Per-thread online insertion; subclasses override the hooks.

    The machine calls :meth:`before_event` ahead of executing each
    work event and :meth:`at_end` when the thread finishes; both
    return the protection ops to execute first (in order).
    """

    def before_event(self, event, now_ns: int) -> List[Op]:
        raise NotImplementedError

    def at_end(self, now_ns: int) -> List[Op]:
        raise NotImplementedError

    def open_pmos(self) -> Set[str]:
        raise NotImplementedError


class ManualMerrPolicy(InsertionPolicy):
    """MM: the programmer bookends each logical operation.

    One attach/detach pair per transaction — the natural place a
    programmer inserts the calls.  The EW target is met *by
    construction* (operations are shorter than the target), which is
    precisely why MERR's windows are unstable: their length is
    whatever the transaction happens to take (Table III: avg 14.5µs
    vs max 34.3µs under a 40µs target).
    """

    def __init__(self, ew_target_ns: int) -> None:
        self.ew_target_ns = ew_target_ns
        self._open: Dict[str, int] = {}     # pmo -> window start ns

    def before_event(self, event, now_ns: int) -> List[Op]:
        ops: List[Op] = []
        if isinstance(event, TxBegin):
            for pmo in event.pmos:
                if pmo not in self._open:
                    ops.append(Op(OpKind.ATTACH, pmo))
                    self._open[pmo] = now_ns
        elif isinstance(event, TxEnd):
            for pmo in list(self._open):
                ops.append(Op(OpKind.DETACH, pmo))
            self._open.clear()
        elif isinstance(event, Burst) and event.pmo not in self._open:
            # A stray access outside any transaction (or to a PMO the
            # TxBegin did not declare): the programmer must have
            # attached it somewhere — model as attach-on-first-use.
            ops.append(Op(OpKind.ATTACH, event.pmo))
            self._open[event.pmo] = now_ns
        return ops

    def at_end(self, now_ns: int) -> List[Op]:
        ops = [Op(OpKind.DETACH, pmo) for pmo in self._open]
        self._open.clear()
        return ops

    def open_pmos(self) -> Set[str]:
        return set(self._open)


class CompilerTerpPolicy(InsertionPolicy):
    """TM/TT: compiler-style insertion bounding each thread window.

    Mirrors the PMO-WFG result at runtime: a conditional attach opens
    the window at the first burst of a region; the window closes
    (conditional detach) at the first region boundary where its length
    has reached the TEW target, and always at transaction end — the
    paper's region post-dominator, where the PMO state returns to
    "detached" on every path.
    """

    def __init__(self, tew_target_ns: int) -> None:
        self.tew_target_ns = tew_target_ns
        self._open: Dict[str, int] = {}     # pmo -> window start ns

    def before_event(self, event, now_ns: int) -> List[Op]:
        ops: List[Op] = []
        # Close any window that has met the TEW target; region
        # boundaries are "before each event".
        for pmo, start in list(self._open.items()):
            if now_ns - start >= self.tew_target_ns:
                ops.append(Op(OpKind.DETACH, pmo))
                del self._open[pmo]
        if isinstance(event, Burst):
            if event.pmo not in self._open:
                ops.append(Op(OpKind.ATTACH, event.pmo))
                self._open[event.pmo] = now_ns
        elif isinstance(event, (TxEnd, RegionEnd)):
            # The region's post-dominator: the static analysis knows no
            # PMO access follows, so every window closes here.
            for pmo in list(self._open):
                ops.append(Op(OpKind.DETACH, pmo))
            self._open.clear()
        return ops

    def at_end(self, now_ns: int) -> List[Op]:
        ops = [Op(OpKind.DETACH, pmo) for pmo in self._open]
        self._open.clear()
        return ops

    def open_pmos(self) -> Set[str]:
        return set(self._open)


class NoProtectionPolicy(InsertionPolicy):
    """Baseline: no attach/detach at all (unprotected execution)."""

    def before_event(self, event, now_ns: int) -> List[Op]:
        return []

    def at_end(self, now_ns: int) -> List[Op]:
        return []

    def open_pmos(self) -> Set[str]:
        return set()
