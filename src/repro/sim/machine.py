"""The discrete-event machine: threads, costs, sweeping, exposure.

The machine runs one simulated process: N workload threads (each a
generator of :mod:`work events <repro.sim.events>`) on N cores, under
an insertion policy and a semantics/architecture engine.  It is the
reproduction's stand-in for Sniper: rather than simulating a pipeline,
it charges the Table II event costs — which is where all of the
paper's measured effects come from.

Cost charging rules (per configuration):

* performed attach/detach: full syscall cost (+TLB shootdown on
  detach);
* silent conditional ops: 27 cycles on the TERP architecture, or —
  when ``silent_ops_are_syscalls`` (the TM configuration) — the full
  syscall cost, since without hardware support every conditional call
  traps into the kernel;
* randomization: 3718 cycles + shootdown, charged to *every* running
  thread (all threads are suspended);
* each PMO access: 1-cycle permission-matrix check, plus TLB re-fill
  penalties for the first burst after a shootdown;
* a thread blocked by Basic semantics polls at 1µs intervals, burning
  wall-clock time (Figure 11's "basic semantics" bars).

Exposure windows are recorded exactly (EW per PMO, TEW per
thread x PMO) through the TERP runtime's monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.arch.cond_engine import TerpArchEngine
from repro.arch.params import CostBreakdown, CostModel, DEFAULT_PARAMS, SimParams
from repro.core.errors import SimulationError
from repro.core.events import Trace
from repro.core.permissions import Access
from repro.core.runtime import TerpRuntime
from repro.core.semantics import ActionKind, Outcome, SemanticsEngine
from repro.core.units import cycles_to_ns, us
from repro.pmo.pool import PmoManager
from repro.sim.events import Burst, Compute, RegionEnd, TxBegin, TxEnd
from repro.sim.policy import InsertionPolicy, Op, OpKind
from repro.sim.stats import RunResult, collect_exposure

#: Poll interval for a thread blocked on a Basic-semantics attach.
BLOCK_POLL_NS = us(1)


@dataclass
class _ThreadState:
    tid: int
    events: Iterator
    policy: InsertionPolicy
    clock_ns: int = 0
    baseline_ns: int = 0
    blocked_ns: int = 0
    #: protection ops queued before the current event executes
    pending_ops: List[Op] = field(default_factory=list)
    #: the event awaiting execution once pending_ops drain
    current_event: object = None
    done: bool = False


class Machine:
    """One simulated process run."""

    def __init__(self, *,
                 engine: SemanticsEngine,
                 policy_factory: Callable[[], InsertionPolicy],
                 pmo_sizes: Dict[str, int],
                 params: SimParams = DEFAULT_PARAMS,
                 silent_ops_are_syscalls: bool = False,
                 randomize_on_reattach: bool = False,
                 detailed_tlb: bool = False,
                 num_cores: Optional[int] = None,
                 seed: int = 2022,
                 trace: Optional[Trace] = None) -> None:
        self.params = params
        self.cost_model = CostModel(params)
        self.engine = engine
        self.policy_factory = policy_factory
        self.silent_ops_are_syscalls = silent_ops_are_syscalls
        self.randomize_on_reattach = randomize_on_reattach
        #: detailed_tlb=True simulates each burst's page translations
        #: through a per-core TLB hierarchy instead of the flat
        #: post-shootdown refill charge — slower but structurally
        #: faithful (used by the fidelity tests).
        self.detailed_tlb = detailed_tlb
        self.manager = PmoManager()
        self.runtime = TerpRuntime(engine, manager=self.manager,
                                   rng=np.random.default_rng(seed),
                                   trace=trace)
        self.pmos = {name: self.manager.create(name, size)
                     for name, size in pmo_sizes.items()}
        self.breakdown = CostBreakdown()
        self._threads: Dict[int, _ThreadState] = {}
        self._ever_attached: set = set()
        #: (tid, pmo) pairs whose TLB entries were shot down
        self._tlb_cold: set = set()
        #: per-thread TLB hierarchies (detailed mode)
        self._tlbs: Dict[int, "TlbHierarchy"] = {}
        #: core count (Table II: 4); threads beyond it time-share
        self.num_cores = num_cores if num_cores is not None \
            else params.num_cores
        self._core_free_at: List[int] = []

    # -- running ----------------------------------------------------------

    def run(self, threads: Dict[int, Iterable]) -> RunResult:
        """Execute the workload threads to completion."""
        self._threads = {
            tid: _ThreadState(tid, iter(events), self.policy_factory())
            for tid, events in threads.items()
        }
        active = list(self._threads.values())
        self._core_free_at = [0] * self.num_cores
        oversubscribed = len(active) > self.num_cores
        while any(not t.done for t in active):
            # Pick the earliest-clock runnable thread (core-accurate
            # for 1:1 thread:core mapping; with more threads than
            # cores, a thread first waits for a free core).
            state = min((t for t in active if not t.done),
                        key=lambda t: t.clock_ns)
            if oversubscribed:
                core = min(range(self.num_cores),
                           key=lambda c: self._core_free_at[c])
                start = max(state.clock_ns, self._core_free_at[core])
                state.clock_ns = start
                before = start
                self._maybe_sweep(state.clock_ns)
                self._step(state)
                self._core_free_at[core] = max(state.clock_ns, before)
            else:
                self._maybe_sweep(state.clock_ns)
                self._step(state)
        wall_ns = max((t.clock_ns for t in active), default=0)
        if oversubscribed:
            # Ideal parallel baseline: total work packed onto the
            # available cores.
            total_work = sum(t.baseline_ns for t in active)
            baseline_ns = max(
                max((t.baseline_ns for t in active), default=0),
                -(-total_work // self.num_cores))
        else:
            baseline_ns = max((t.baseline_ns for t in active),
                              default=0)
        self.runtime.finish(max(wall_ns, self.runtime.now_ns))
        per_pmo = collect_exposure(self.runtime.monitor, wall_ns,
                                   len(active))
        return RunResult(
            wall_ns=wall_ns,
            baseline_ns=baseline_ns,
            breakdown=self.breakdown,
            counters=self.runtime.counters,
            per_pmo=per_pmo,
            blocked_ns=sum(t.blocked_ns for t in active),
            num_threads=len(active),
            arch_cases=(self.engine.cases
                        if isinstance(self.engine, TerpArchEngine) else None),
        )

    # -- one scheduling step -------------------------------------------------

    def _step(self, state: _ThreadState) -> None:
        if state.pending_ops:
            op = state.pending_ops[0]
            finished = self._execute_op(state, op)
            if finished:
                state.pending_ops.pop(0)
            return
        if state.current_event is not None:
            event, state.current_event = state.current_event, None
            self._execute_event(state, event)
            return
        try:
            event = next(state.events)
        except StopIteration:
            state.pending_ops = state.policy.at_end(state.clock_ns)
            if not state.pending_ops:
                state.done = True
            else:
                state.current_event = _EndMarker
            return
        state.pending_ops = state.policy.before_event(event, state.clock_ns)
        state.current_event = event

    def _execute_event(self, state: _ThreadState, event) -> None:
        if event is _EndMarker:
            state.done = True
            return
        if isinstance(event, Compute):
            self._compute(state, event.ns)
        elif isinstance(event, Burst):
            self._execute_burst(state, event)
        elif isinstance(event, (TxBegin, TxEnd, RegionEnd)):
            pass  # markers only; the policy already consumed them
        else:
            raise SimulationError(f"unknown work event {event!r}")

    def _compute(self, state: _ThreadState, ns: int) -> None:
        """Advance through a compute stretch, stopping at every EW
        expiry so the hardware sweeper acts on time (it ticks every
        microsecond in hardware; the DES must not jump deadlines)."""
        state.baseline_ns += ns
        end = state.clock_ns + ns
        if isinstance(self.engine, TerpArchEngine):
            while True:
                deadline = self.engine.next_expiry_ns()
                if deadline is None:
                    break
                # Honour the hardware sweep period: the sweeper acts at
                # the first tick at/after the expiry.
                tick = max(deadline, self.engine._last_sweep_ns
                           + self.engine.sweep_period_ns)
                if tick >= end:
                    break
                state.clock_ns = max(state.clock_ns, tick)
                pre_sweep = state.clock_ns
                self._run_sweep(state.clock_ns)
                # Sweep-initiated work (forced detaches, randomize
                # suspensions) steals core time from the compute
                # stretch rather than overlapping it.
                end += state.clock_ns - pre_sweep
        state.clock_ns = max(state.clock_ns, end)

    # -- protection ops ---------------------------------------------------------

    def _execute_op(self, state: _ThreadState, op: Op) -> bool:
        """Run one attach/detach; returns False if the thread blocked."""
        pmo = self.pmos[op.pmo]
        now = max(state.clock_ns, self.runtime.now_ns)
        state.clock_ns = now
        if op.kind is OpKind.ATTACH:
            result = self.runtime.attach(state.tid, pmo, op.access, now)
            decision = result.decision
            if decision.outcome is Outcome.BLOCKED:
                state.clock_ns += BLOCK_POLL_NS
                state.blocked_ns += BLOCK_POLL_NS
                return False
            if decision.outcome is Outcome.ERROR:
                raise SimulationError(
                    f"policy produced invalid attach: {decision.reason}")
            self._charge_attach(state, decision.performed, pmo)
            if decision.performed:
                # The window becomes usable only once the attach
                # syscall completes: exclude its processing time.
                mon = self.runtime.monitor
                if mon.ew.is_open(pmo.pmo_id):
                    mon.ew.shift_open(pmo.pmo_id, state.clock_ns)
                if mon.tew.is_open((state.tid, pmo.pmo_id)):
                    mon.tew.shift_open((state.tid, pmo.pmo_id),
                                       state.clock_ns)
        else:
            decision = self.runtime.detach(state.tid, pmo, now)
            if decision.outcome is Outcome.ERROR:
                raise SimulationError(
                    f"policy produced invalid detach: {decision.reason}")
            self._charge_detach(state, decision.performed, pmo)
        self._charge_decision_side_effects(state, decision, pmo)
        return True

    def _charge_attach(self, state: _ThreadState, performed: bool,
                       pmo) -> None:
        if performed:
            cycles = self.cost_model.charge_attach(self.breakdown,
                                                   performed=True)
            if self.randomize_on_reattach and \
                    pmo.pmo_id in self._ever_attached:
                # MERR randomizes the mapping at every re-attach.
                cycles += self.cost_model.charge_randomize(self.breakdown)
            self._ever_attached.add(pmo.pmo_id)
        elif self.silent_ops_are_syscalls:
            # TM: the conditional instruction is emulated by a syscall.
            cycles = self.params.attach_syscall
            self.breakdown.add("cond", cycles)
        else:
            cycles = self.cost_model.charge_attach(self.breakdown,
                                                   performed=False)
        state.clock_ns += cycles_to_ns(cycles, self.params.freq_ghz)

    def _charge_detach(self, state: _ThreadState, performed: bool,
                       pmo) -> None:
        if performed:
            cycles = self.cost_model.charge_detach(self.breakdown,
                                                   performed=True)
            self._mark_tlb_cold(pmo.pmo_id)
        elif self.silent_ops_are_syscalls:
            cycles = self.params.detach_syscall
            self.breakdown.add("cond", cycles)
        else:
            cycles = self.cost_model.charge_detach(self.breakdown,
                                                   performed=False)
        state.clock_ns += cycles_to_ns(cycles, self.params.freq_ghz)

    def _charge_decision_side_effects(self, state: _ThreadState,
                                      decision, pmo) -> None:
        for action in decision.actions:
            if action.kind is ActionKind.RANDOMIZE:
                self._charge_randomize(action.pmo_id)

    def _charge_randomize(self, pmo_id) -> None:
        """Randomization suspends all threads: everyone pays."""
        running = [t for t in self._threads.values() if not t.done]
        cycles = self.cost_model.charge_randomize(
            self.breakdown, num_threads_suspended=len(running))
        delta = cycles_to_ns(cycles, self.params.freq_ghz)
        for t in running:
            t.clock_ns += delta
        self._mark_tlb_cold(pmo_id)

    def _mark_tlb_cold(self, pmo_id) -> None:
        for tid in self._threads:
            self._tlb_cold.add((tid, pmo_id))

    # -- bursts --------------------------------------------------------------

    def _execute_burst(self, state: _ThreadState, burst: Burst) -> None:
        pmo = self.pmos[burst.pmo]
        now = max(state.clock_ns, self.runtime.now_ns)
        state.clock_ns = now
        need = Access.RW if burst.write_fraction > 0 else Access.READ
        decision = self.runtime.access(state.tid, pmo, 0, need, now)
        if decision.outcome in (Outcome.FAULT_SEGV, Outcome.FAULT_PERM):
            raise SimulationError(
                f"burst faulted (policy bug): {decision.reason} "
                f"thread={state.tid} pmo={burst.pmo}")
        base_cycles = burst.n_accesses * burst.base_cycles
        base_ns = cycles_to_ns(base_cycles, self.params.freq_ghz)
        state.baseline_ns += base_ns
        state.clock_ns += base_ns
        # Protection adds a matrix check per access ...
        check_cycles = burst.n_accesses * self.params.matrix_check
        self.breakdown.add("other", check_cycles)
        extra = check_cycles
        # ... and TLB re-fill penalties after a shootdown.
        key = (state.tid, pmo.pmo_id)
        if self.detailed_tlb:
            extra += self._detailed_tlb_cycles(state, burst, pmo)
        elif key in self._tlb_cold:
            self._tlb_cold.discard(key)
            refill = min(burst.unique_pages, burst.n_accesses) * \
                self.params.tlb_miss_penalty
            self.breakdown.add("other", refill)
            extra += refill
        state.clock_ns += cycles_to_ns(extra, self.params.freq_ghz)

    def _detailed_tlb_cycles(self, state: _ThreadState, burst: Burst,
                             pmo) -> int:
        """Simulate the burst's translations through a real TLB.

        A shootdown marker for (thread, pmo) invalidates the owner's
        entries in that thread's hierarchy first, so the next burst
        pays genuine walk penalties.  Extra cycles beyond the 1-cycle
        L1-hit baseline (already inside ``base_cycles``) are charged.
        """
        from repro.mem.tlb import TlbHierarchy
        tlb = self._tlbs.get(state.tid)
        if tlb is None:
            tlb = TlbHierarchy()
            self._tlbs[state.tid] = tlb
        owner = str(pmo.pmo_id)
        key = (state.tid, pmo.pmo_id)
        if key in self._tlb_cold:
            self._tlb_cold.discard(key)
            tlb.invalidate_owner(owner)
        mapping = self.runtime.space.mapping_of(pmo.pmo_id)
        base_va = mapping.base_va if mapping else 0
        from repro.core.units import PAGE_SIZE
        pages = max(1, burst.unique_pages)
        extra = 0
        for i in range(min(burst.n_accesses, 4 * pages)):
            va = base_va + (i % pages) * PAGE_SIZE
            extra += tlb.access(va, owner) - tlb.L1_LATENCY
        self.breakdown.add("other", extra)
        return extra

    # -- the hardware sweeper ------------------------------------------------------

    def _maybe_sweep(self, now_ns: int) -> None:
        if not isinstance(self.engine, TerpArchEngine):
            return
        if not self.engine.sweep_due(now_ns):
            return
        self._run_sweep(now_ns)

    def _run_sweep(self, now_ns: int) -> None:
        decisions = self.engine.sweep(now_ns)
        if decisions:
            # The sweep acts at global hardware time: advance the
            # runtime clock so no later (per-thread) operation can be
            # timestamped before the sweep's window transitions.
            self.runtime._advance(max(now_ns, self.runtime.now_ns))
        for decision in decisions:
            pmo_id = decision.actions[0].pmo_id
            pmo = self.manager.get(pmo_id)
            when = max(now_ns, self.runtime.now_ns)
            # _apply installs the unmap/randomize and updates the
            # monitor and counters; costs are charged below.
            self.runtime._apply(decision, pmo, when)
            if decision.performed:
                # Forced detach: syscall initiated by hardware; charge
                # the sweeping core (the earliest-clock thread).
                cycles = self.cost_model.charge_detach(self.breakdown,
                                                       performed=True)
                victim = min((t for t in self._threads.values()
                              if not t.done),
                             key=lambda t: t.clock_ns, default=None)
                if victim is not None:
                    victim.clock_ns += cycles_to_ns(cycles,
                                                    self.params.freq_ghz)
                self._mark_tlb_cold(pmo_id)
                self.runtime.counters.detach_syscalls += 1
            else:
                self._charge_randomize(pmo_id)


class _EndMarkerType:
    def __repr__(self) -> str:
        return "<end>"


_EndMarker = _EndMarkerType()
