"""Data-cache models (Table II: L1D, shared L2, DRAM/NVM).

A classic set-associative LRU cache simulator, plus the hierarchy the
paper configures: private 32KB 8-way L1D (1 cycle), shared 1MB 16-way
L2 (8 cycles), and main memory at DRAM (120 cycles) or NVM (360
cycles) latency.  PMO traffic goes to NVM; everything else to DRAM.

The machine charges burst *base* costs from workload-calibrated
``base_cycles``; this module provides the principled way to obtain
such numbers (:func:`expected_access_cycles`) and is exercised
directly by the cache-behaviour tests and the detailed-mode machine
option.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.arch.params import DEFAULT_PARAMS, SimParams

LINE_SIZE = 64


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative, LRU, write-allocate cache level."""

    def __init__(self, size_bytes: int, ways: int,
                 name: str = "cache") -> None:
        lines = size_bytes // LINE_SIZE
        if lines % ways:
            raise ValueError("line count must be divisible by ways")
        self.name = name
        self.ways = ways
        self.num_sets = lines // ways
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _set_for(self, line: int) -> OrderedDict:
        return self._sets[line % self.num_sets]

    def lookup(self, addr: int) -> bool:
        line = addr // LINE_SIZE
        entries = self._set_for(line)
        if line in entries:
            entries.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, addr: int) -> Optional[int]:
        """Insert the line; returns an evicted line number or None."""
        line = addr // LINE_SIZE
        entries = self._set_for(line)
        if line in entries:
            entries.move_to_end(line)
            return None
        victim = None
        if len(entries) >= self.ways:
            victim, _ = entries.popitem(last=False)
        entries[line] = True
        return victim

    def invalidate_all(self) -> int:
        removed = sum(len(s) for s in self._sets)
        for entries in self._sets:
            entries.clear()
        return removed

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class CacheHierarchy:
    """L1D + L2 + memory with the Table II latencies."""

    def __init__(self, params: SimParams = DEFAULT_PARAMS) -> None:
        self.params = params
        self.l1 = Cache(params.l1d_size_kb * 1024, params.l1d_ways,
                        "L1D")
        self.l2 = Cache(params.l2_size_mb * 1024 * 1024,
                        params.l2_ways, "L2")

    def access(self, addr: int, *, nvm: bool = False) -> int:
        """Latency in cycles for one load/store at ``addr``."""
        if self.l1.lookup(addr):
            return self.params.l1d_latency
        if self.l2.lookup(addr):
            self.l1.fill(addr)
            return self.params.l1d_latency + self.params.l2_latency
        self.l1.fill(addr)
        self.l2.fill(addr)
        memory = (self.params.nvm_latency if nvm
                  else self.params.dram_latency)
        return (self.params.l1d_latency + self.params.l2_latency
                + memory)


def expected_access_cycles(working_set_bytes: int, *,
                           nvm: bool = True,
                           params: SimParams = DEFAULT_PARAMS) -> float:
    """Steady-state average cycles per access for a working set.

    A simple inclusive-capacity model: accesses to a working set that
    fits in L1 cost L1 latency; the L1-overflow fraction pays L2; the
    L2-overflow fraction pays memory.  This is how the workload specs'
    ``base_cycles_per_access`` values are justified (≈8 cycles for a
    multi-megabyte PMO working set with high locality).
    """
    l1_bytes = params.l1d_size_kb * 1024
    l2_bytes = params.l2_size_mb * 1024 * 1024
    if working_set_bytes <= 0:
        raise ValueError("working set must be positive")
    l1_fraction = min(1.0, l1_bytes / working_set_bytes)
    l2_fraction = min(1.0, l2_bytes / working_set_bytes) - l1_fraction
    memory_fraction = max(0.0, 1.0 - l1_fraction - l2_fraction)
    memory = params.nvm_latency if nvm else params.dram_latency
    return (l1_fraction * params.l1d_latency
            + l2_fraction * (params.l1d_latency + params.l2_latency)
            + memory_fraction * (params.l1d_latency
                                 + params.l2_latency + memory))
