"""Run results: everything the evaluation tables and figures consume."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.arch.params import CostBreakdown
from repro.core.exposure import ExposureMonitor, WindowStats
from repro.core.runtime import RuntimeCounters
from repro.core.units import ns_to_us


@dataclass
class PmoExposure:
    """Per-PMO exposure summary (Tables III/IV are averages of these)."""

    pmo: Hashable
    ew_avg_us: float
    ew_max_us: float
    er_percent: float
    tew_avg_us: float
    ter_percent: float


@dataclass
class RunResult:
    """The complete outcome of one simulated run."""

    wall_ns: int
    baseline_ns: int
    breakdown: CostBreakdown
    counters: RuntimeCounters
    per_pmo: List[PmoExposure]
    blocked_ns: int = 0
    num_threads: int = 1
    #: populated when the run used the TERP architecture engine
    arch_cases: Optional[object] = None

    @property
    def overhead_percent(self) -> float:
        """Execution-time overhead over the unprotected baseline."""
        if self.baseline_ns == 0:
            return 0.0
        return 100.0 * (self.wall_ns - self.baseline_ns) / self.baseline_ns

    @property
    def silent_percent(self) -> float:
        return self.counters.silent_percent

    @property
    def cond_per_second(self) -> float:
        """Conditional attach/detach executed per second of run time."""
        if self.wall_ns == 0:
            return 0.0
        calls = self.counters.attach_calls + self.counters.detach_calls
        return calls / (self.wall_ns / 1e9)

    # -- aggregate exposure (averaged over PMOs, as in Table IV) ----------

    def _avg(self, attr: str) -> float:
        if not self.per_pmo:
            return 0.0
        return sum(getattr(p, attr) for p in self.per_pmo) / len(self.per_pmo)

    @property
    def ew_avg_us(self) -> float:
        return self._avg("ew_avg_us")

    @property
    def ew_max_us(self) -> float:
        if not self.per_pmo:
            return 0.0
        return max(p.ew_max_us for p in self.per_pmo)

    @property
    def er_percent(self) -> float:
        return self._avg("er_percent")

    @property
    def tew_avg_us(self) -> float:
        return self._avg("tew_avg_us")

    @property
    def ter_percent(self) -> float:
        return self._avg("ter_percent")

    def overhead_breakdown_percent(self) -> Dict[str, float]:
        """Each cost category as % of baseline time (Figure 9 bars)."""
        if self.baseline_ns == 0:
            return {}
        from repro.core.units import cycles_to_ns
        out = {}
        for category, cycles in self.breakdown.cycles.items():
            out[category] = 100.0 * cycles_to_ns(cycles) / self.baseline_ns
        return out

    def to_dict(self) -> Dict:
        """JSON-serializable summary for external tooling."""
        return {
            "wall_ns": self.wall_ns,
            "baseline_ns": self.baseline_ns,
            "overhead_percent": self.overhead_percent,
            "silent_percent": self.silent_percent,
            "cond_per_second": self.cond_per_second,
            "blocked_ns": self.blocked_ns,
            "num_threads": self.num_threads,
            "breakdown_percent": self.overhead_breakdown_percent(),
            "counters": {
                "attach_calls": self.counters.attach_calls,
                "detach_calls": self.counters.detach_calls,
                "attach_syscalls": self.counters.attach_syscalls,
                "detach_syscalls": self.counters.detach_syscalls,
                "randomizations": self.counters.randomizations,
                "faults": self.counters.faults,
                "errors": self.counters.errors,
            },
            "per_pmo": [{
                "pmo": str(p.pmo),
                "ew_avg_us": p.ew_avg_us,
                "ew_max_us": p.ew_max_us,
                "er_percent": p.er_percent,
                "tew_avg_us": p.tew_avg_us,
                "ter_percent": p.ter_percent,
            } for p in self.per_pmo],
        }


def collect_exposure(monitor: ExposureMonitor, wall_ns: int,
                     num_threads: int) -> List[PmoExposure]:
    """Summarize the monitor's windows per PMO."""
    result = []
    for pmo in monitor.ew.keys():
        ew_stats = monitor.ew.stats(pmo)
        tew_windows = []
        total_tew_ns = 0
        for key in monitor.tew.keys():
            if isinstance(key, tuple) and key[1] == pmo:
                wins = monitor.tew.windows(key)
                tew_windows.extend(wins)
                total_tew_ns += sum(w.length_ns for w in wins)
        tew_stats = WindowStats.of(tew_windows)
        result.append(PmoExposure(
            pmo=pmo,
            ew_avg_us=ns_to_us(ew_stats.avg_ns),
            ew_max_us=ns_to_us(ew_stats.max_ns),
            er_percent=(100.0 * ew_stats.total_ns / wall_ns
                        if wall_ns else 0.0),
            tew_avg_us=ns_to_us(tew_stats.avg_ns),
            # TER normalizes per thread: total thread-window time over
            # total thread-time (threads x wall clock).
            ter_percent=(100.0 * total_tew_ns / (wall_ns * num_threads)
                         if wall_ns else 0.0),
        ))
    return result
