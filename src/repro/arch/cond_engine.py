"""Conditional attach/detach execution — Figures 7b and 7c.

:class:`TerpArchEngine` is the hardware realization of the
EW-conscious semantics with *window combining*: it implements the
same :class:`~repro.core.semantics.SemanticsEngine` interface, so the
TERP runtime can drive it interchangeably with the software engines,
but its decisions follow the six CONDAT/CONDDT cases:

=====  ==========================================================
Case   behaviour
=====  ==========================================================
1      first attach: allocate CB entry (Ctr=1, DD=0), set thread
       permission, attach() system call
2      subsequent attach (DD=0): set thread permission, Ctr++
3      silent attach (DD=1): reset DD, Ctr=1, set thread
       permission — a detach+attach syscall pair elided
4      partial detach (more holders remain): revoke thread
       permission, Ctr--
5      full detach (last holder, EW target met): detach() syscall
6      delayed detach (last holder, EW not yet met): set DD,
       revoke thread permission — the window stays open for
       combining
=====  ==========================================================

The periodic sweep (:meth:`sweep`) force-closes expired windows:
detaching PMOs nobody holds (DD=1, Ctr=0) and re-randomizing PMOs
still held (Ctr>0) so no PMO address outlives the EW target (the
partial-combining case of Figure 6c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Set, Tuple)

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.obs.tracing import Tracer

from repro.core.errors import InjectedFault
from repro.core.permissions import Access
from repro.core.semantics import (
    Action, ActionKind, Decision, Outcome, SemanticsEngine)
from repro.arch.circular_buffer import CircularBuffer, TIMER_TICK_NS


@dataclass
class CaseCounters:
    """How often each of the six hardware cases fired."""

    case1_first_attach: int = 0
    case2_subsequent_attach: int = 0
    case3_silent_attach: int = 0
    case4_partial_detach: int = 0
    case5_full_detach: int = 0
    case6_delayed_detach: int = 0
    sweep_detaches: int = 0
    sweep_randomizes: int = 0

    @property
    def elided_syscall_pairs(self) -> int:
        """Case 3 elides one detach+attach system-call pair each time."""
        return self.case3_silent_attach


class TerpArchEngine(SemanticsEngine):
    """EW-conscious semantics in hardware, with window combining."""

    name = "terp-arch"

    def __init__(self, ew_target_ns: int, *,
                 capacity: int = 32,
                 domain_capacity: Optional[int] = None,
                 sweep_period_ns: int = TIMER_TICK_NS,
                 window_combining: bool = True) -> None:
        super().__init__()
        if ew_target_ns <= 0:
            raise ValueError("ew_target_ns must be positive")
        self.ew_target_ns = ew_target_ns
        self.sweep_period_ns = sweep_period_ns
        #: How many PMOs the protection-domain substrate can keep
        #: mapped at once (MPK: 15 assignable keys).  Every CB entry is
        #: a mapped PMO, so when this bound is hit, a delayed-detach
        #: entry is evicted exactly as when the buffer itself fills —
        #: otherwise the MAP action would fail below the engine with
        #: the key pool exhausted.  ``None`` removes the bound (the
        #: simulator's pure-engine tests).
        self.domain_capacity = domain_capacity
        #: window_combining=False ablates the delayed-detach path
        #: (cases 3 and 6): the last holder's detach always unmaps.
        #: This is Figure 11's "+Cond" configuration — conditional
        #: instructions without the circular buffer's combining.
        self.window_combining = window_combining
        self.cb = CircularBuffer(capacity)
        self.cases = CaseCounters()
        self._thread_open: Dict[Tuple[int, Hashable], bool] = {}
        self._last_sweep_ns = 0
        #: attach pairs closed by a forced detach (sweep or eviction)
        #: rather than by the owning thread; a later detach from that
        #: thread is a defined silent no-op instead of an error.
        self._forced_pairs: Set[Tuple[int, Hashable]] = set()
        #: observer hook for the service layer: called as
        #: ``on_forced_detach(pmo_id, (thread_id, ...))`` whenever the
        #: sweeper or the eviction path force-detaches a PMO, with the
        #: threads whose open pairs were closed by force.
        self.on_forced_detach: Optional[
            Callable[[Hashable, Tuple[int, ...]], None]] = None
        #: optional observability hook: when set (the terpd service
        #: does), each sweep pass that does work is recorded as an
        #: ``engine.sweep`` span nested under the caller's span.
        self.tracer: Optional["Tracer"] = None
        #: optional fault-injection plan; sites ``engine.buffer_full``
        #: and ``engine.domain_exhausted`` (attach-side transient
        #: capacity faults).  The sweeper-stall site lives in the
        #: driver that schedules sweeps (terpd's ``run_sweep``), not
        #: here — a stalled sweeper never enters this method at all.
        self.faults: Optional["FaultPlan"] = None
        #: optional integrity scrubber, invoked once per sweep pass.
        #: The durable pool backend plugs in ``PmoStore.scrub`` here so
        #: a bounded number of at-rest pages are CRC-verified (and
        #: journal-repaired) every sweep — corruption of *detached*
        #: data is found while the daemon runs, not at the next
        #: restart.  Must be cheap and non-blocking; any return value
        #: is the caller's to consume via :attr:`on_scrub`.
        self.scrubber: Optional[Callable[[], object]] = None
        #: ``on_scrub(result)`` — receives the scrubber's return value
        #: after each invocation (terpd feeds metrics + audit from it).
        self.on_scrub: Optional[Callable[[object], None]] = None

    def thread_has_open_pair(self, thread_id: int, pmo_id: Hashable) -> bool:
        return self._thread_open.get((thread_id, pmo_id), False)

    def _at_capacity(self) -> bool:
        if self.cb.is_full():
            return True
        return self.domain_capacity is not None and \
            len(self.cb) >= self.domain_capacity

    # -- CONDAT ------------------------------------------------------------

    def attach(self, thread_id: int, pmo_id: Hashable, access: Access,
               now_ns: int) -> Decision:
        key = (thread_id, pmo_id)
        if self._thread_open.get(key):
            return Decision(Outcome.ERROR,
                            reason="overlapping attach within a thread")
        if self.faults is not None:
            # Transient capacity faults: the buffer (or the MPK key
            # pool beneath it) reports full even though it is not —
            # the retryable resource-exhaustion failure mode.
            if self.faults.fire("engine.buffer_full") is not None:
                raise InjectedFault(
                    "injected: circular buffer full",
                    site="engine.buffer_full")
            if self.faults.fire("engine.domain_exhausted") is not None:
                raise InjectedFault(
                    "injected: protection-domain pool exhausted",
                    site="engine.domain_exhausted")
        # A fresh attach supersedes any forced-detach marker: from here
        # on the pair is live again and its detach must be real.
        self._forced_pairs.discard(key)
        entry = self.cb.lookup(pmo_id)
        st = self._state(pmo_id)
        if entry is None:
            # Case 1: first attach.  Make room if the buffer — or the
            # protection-domain pool underneath it — is full.
            if self._at_capacity():
                victim = self.cb.evictable()
                if victim is None:
                    return Decision(Outcome.ERROR,
                                    reason="attach capacity reached "
                                           "(circular buffer full or no "
                                           "free protection domain), no "
                                           "evictable entry")
                self._force_detach(victim.pmo_id)
                # The victim's real detach is folded into this attach's
                # decision so the runtime applies it.
                self.cb.remove(victim.pmo_id)
                self.cases.sweep_detaches += 1
                self._thread_open[key] = True
                st.holders[thread_id] = access
                st.mapped = True
                st.last_real_attach_ns = now_ns
                self.cb.add(pmo_id, now_ns)
                self.cases.case1_first_attach += 1
                return Decision(Outcome.PERFORMED, [
                    Action(ActionKind.UNMAP, victim.pmo_id),
                    Action(ActionKind.MAP, pmo_id),
                    Action(ActionKind.GRANT, pmo_id, thread_id, access),
                ], reason="case 1 after eviction")
            self.cb.add(pmo_id, now_ns)
            st.mapped = True
            st.last_real_attach_ns = now_ns
            st.holders[thread_id] = access
            self._thread_open[key] = True
            self.cases.case1_first_attach += 1
            return Decision(Outcome.PERFORMED, [
                Action(ActionKind.MAP, pmo_id),
                Action(ActionKind.GRANT, pmo_id, thread_id, access),
            ], reason="case 1: first attach")
        self._thread_open[key] = True
        st.holders[thread_id] = access
        if not entry.dd:
            # Case 2: subsequent attach by another thread.
            entry.ctr += 1
            self.cases.case2_subsequent_attach += 1
            return Decision(Outcome.SILENT, [
                Action(ActionKind.GRANT, pmo_id, thread_id, access),
            ], reason="case 2: subsequent attach")
        # Case 3: PMO was in delayed-detach state; elide the pair.
        entry.dd = False
        entry.ctr = 1
        self.cases.case3_silent_attach += 1
        return Decision(Outcome.SILENT, [
            Action(ActionKind.GRANT, pmo_id, thread_id, access),
        ], reason="case 3: silent attach (window combined)")

    # -- CONDDT -------------------------------------------------------------

    def detach(self, thread_id: int, pmo_id: Hashable,
               now_ns: int) -> Decision:
        key = (thread_id, pmo_id)
        if not self._thread_open.get(key):
            if key in self._forced_pairs:
                # The sweeper (or an eviction) already closed this pair
                # while the thread was still inside it — the thread's
                # own detach raced the forced one and lost.  That is a
                # defined outcome, not a semantics violation.
                self._forced_pairs.discard(key)
                return Decision(Outcome.SILENT,
                                reason="pair already closed by forced "
                                       "detach")
            return Decision(Outcome.ERROR,
                            reason="detach without a matching attach "
                                   "in this thread")
        entry = self.cb.lookup(pmo_id)
        if entry is None:
            return Decision(Outcome.ERROR,
                            reason="detach of PMO not in circular buffer")
        self._thread_open[key] = False
        st = self._state(pmo_id)
        st.holders.pop(thread_id, None)
        entry.ctr -= 1
        actions = [Action(ActionKind.REVOKE, pmo_id, thread_id)]
        if entry.ctr > 0:
            # Case 4: other threads still hold the PMO.
            self.cases.case4_partial_detach += 1
            return Decision(Outcome.SILENT, actions,
                            reason="case 4: partial detach")
        if not self.window_combining or \
                entry.age_ns(now_ns) >= self.ew_target_ns:
            # Case 5: EW met/exceeded — full detach.  (With combining
            # ablated, every last-holder detach takes this path.)
            self.cb.remove(pmo_id)
            st.mapped = False
            actions.append(Action(ActionKind.UNMAP, pmo_id))
            self.cases.case5_full_detach += 1
            return Decision(Outcome.PERFORMED, actions,
                            reason="case 5: full detach")
        # Case 6: delay the detach; the window may combine with the
        # next attach (Figure 6a) or the sweeper will close it.
        entry.dd = True
        self.cases.case6_delayed_detach += 1
        return Decision(Outcome.SILENT, actions,
                        reason="case 6: delayed detach")

    # -- access (same checks as EW-conscious) --------------------------------

    def access(self, thread_id: int, pmo_id: Hashable, requested: Access,
               now_ns: int) -> Decision:
        st = self._state(pmo_id)
        if not st.mapped:
            return Decision(Outcome.FAULT_SEGV, reason="PMO not attached")
        granted = st.holders.get(thread_id, Access.NONE)
        if not granted.allows(requested):
            return Decision(Outcome.FAULT_PERM,
                            reason=f"thread {thread_id} needs "
                                   f"{requested}, has {granted}")
        return Decision(Outcome.OK)

    # -- the sweeper ------------------------------------------------------------

    def sweep_due(self, now_ns: int) -> bool:
        return now_ns - self._last_sweep_ns >= self.sweep_period_ns

    def next_expiry_ns(self) -> Optional[int]:
        """Earliest time any buffered PMO reaches its EW target.

        The simulator uses this to land a sweep inside long compute
        stretches — hardware would simply tick; a DES must not jump
        over the deadline.
        """
        entries = list(self.cb.entries())
        if not entries:
            return None
        return min(e.ts_ns for e in entries) + self.ew_target_ns

    def sweep(self, now_ns: int) -> List[Decision]:
        """Periodic head-to-tail sweep (Figure 7a, steps 3-4).

        Returns one decision per expired entry: a PERFORMED detach for
        entries no thread holds, a RANDOMIZE for held entries (which
        also resets their attach timestamp).
        """
        tracer = self.tracer
        t0 = tracer.clock() if tracer is not None else 0
        self._last_sweep_ns = now_ns
        decisions: List[Decision] = []
        for entry in self.cb.sweep(now_ns, self.ew_target_ns):
            if entry.ctr == 0:
                self.cb.remove(entry.pmo_id)
                self._force_detach(entry.pmo_id)
                self.cases.sweep_detaches += 1
                decisions.append(Decision(Outcome.PERFORMED, [
                    Action(ActionKind.UNMAP, entry.pmo_id),
                ], reason="sweep: EW met, no holders"))
            else:
                entry.ts_ns = now_ns
                st = self._state(entry.pmo_id)
                st.last_real_attach_ns = now_ns
                self.cases.sweep_randomizes += 1
                decisions.append(Decision(Outcome.SILENT, [
                    Action(ActionKind.RANDOMIZE, entry.pmo_id),
                ], reason="sweep: EW met, holders remain -> randomize"))
        if self.scrubber is not None:
            result = self.scrubber()
            if self.on_scrub is not None:
                self.on_scrub(result)
        if tracer is not None and decisions:
            tracer.record_since("engine.sweep", t0,
                                decisions=len(decisions))
        return decisions

    def _force_detach(self, pmo_id: Hashable) -> None:
        st = self._state(pmo_id)
        st.mapped = False
        st.holders.clear()
        closed = tuple(t for (t, p), is_open in self._thread_open.items()
                       if p == pmo_id and is_open)
        for thread_id in closed:
            self._thread_open[(thread_id, pmo_id)] = False
            self._forced_pairs.add((thread_id, pmo_id))
        if self.on_forced_detach is not None:
            self.on_forced_detach(pmo_id, closed)
