"""The window-combining circular buffer (Figure 7a).

32 entries, 34 bits each: PMO ID (10b), timestamp of the last real
attach (TS, 10b in hardware — modelled unclamped here with the field
widths kept for the area math), a counter of threads holding an attach
(Ctr, 13b), and a delayed-detach bit (DD).  A hardware timer ticks at
a coarse granularity (1µs) and a periodic sweep walks the buffer to
force-detach or re-randomize PMOs whose maximum exposure window has
been reached.

This module is the pure data structure; the decision logic for
CONDAT/CONDDT (cases 1–6 of Figures 7b/7c) lives in
:mod:`repro.arch.cond_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional

from repro.core.errors import SimulationError

#: Hardware sizing (Section V-B: 32 entries x 34 bits = 140 bytes
#: including the timer).
NUM_ENTRIES = 32
PMOID_BITS = 10
TS_BITS = 10
CTR_BITS = 13
DD_BITS = 1
ENTRY_BITS = PMOID_BITS + TS_BITS + CTR_BITS + DD_BITS
TIMER_BITS = 32
#: Timer tick granularity in ns (1us).
TIMER_TICK_NS = 1_000


@dataclass
class CbEntry:
    """One circular-buffer entry."""

    pmo_id: Hashable
    ts_ns: int           # time of last real attach
    ctr: int = 1         # threads that have made an attach call
    dd: bool = False     # delayed-detach pending

    def age_ns(self, now_ns: int) -> int:
        return now_ns - self.ts_ns


class CircularBuffer:
    """FIFO-ordered buffer of attached PMOs with head-to-tail sweeping."""

    def __init__(self, capacity: int = NUM_ENTRIES) -> None:
        self.capacity = capacity
        self._entries: Dict[Hashable, CbEntry] = {}   # insertion ordered
        self.adds = 0
        self.removes = 0
        self.sweeps = 0

    def lookup(self, pmo_id: Hashable) -> Optional[CbEntry]:
        return self._entries.get(pmo_id)

    def add(self, pmo_id: Hashable, now_ns: int) -> CbEntry:
        """Append a newly attached PMO at the tail."""
        if pmo_id in self._entries:
            raise SimulationError(f"PMO {pmo_id!r} already in buffer")
        if len(self._entries) >= self.capacity:
            raise SimulationError("circular buffer full")
        entry = CbEntry(pmo_id, now_ns)
        self._entries[pmo_id] = entry
        self.adds += 1
        return entry

    def remove(self, pmo_id: Hashable) -> CbEntry:
        entry = self._entries.pop(pmo_id, None)
        if entry is None:
            raise SimulationError(f"PMO {pmo_id!r} not in buffer")
        self.removes += 1
        return entry

    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def evictable(self) -> Optional[CbEntry]:
        """An entry that can be force-detached to make room: delayed
        detach pending and no thread holding (head-most first)."""
        for entry in self._entries.values():
            if entry.dd and entry.ctr == 0:
                return entry
        return None

    def sweep(self, now_ns: int, max_ew_ns: int) -> List[CbEntry]:
        """Head-to-tail sweep: entries whose EW target has elapsed.

        Returns the expired entries; the caller decides detach (ctr==0)
        vs randomize (ctr>0), per Figure 7a's example.
        """
        self.sweeps += 1
        return [e for e in self._entries.values()
                if e.age_ns(now_ns) >= max_ew_ns]

    def entries(self) -> Iterator[CbEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def storage_bits(capacity: int = NUM_ENTRIES) -> int:
        """Total SRAM bits: entries plus the 32-bit timer."""
        return capacity * ENTRY_BITS + TIMER_BITS

    @staticmethod
    def storage_bytes(capacity: int = NUM_ENTRIES) -> int:
        return -(-CircularBuffer.storage_bits(capacity) // 8)
