"""Hardware-cost (die area) model for the circular buffer.

The paper uses Cacti 5.1 against a 45nm Nehalem die and reports: total
on-chip storage 140 bytes, consuming 0.006% of the die area.  Cacti is
a C tool we cannot ship, so this is a small analytic SRAM model with
the same structure — bit-cell area plus a peripheral-overhead factor
that dominates for tiny arrays — calibrated so the paper's
configuration reproduces its numbers exactly.

The model is only used for the hardware-cost claim (Section V-B), not
by any timing simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.circular_buffer import CircularBuffer

#: 45nm process: 6T SRAM bit-cell area in um^2 (ITRS-class value).
SRAM_CELL_UM2_45NM = 0.346
#: Peripheral overhead calibration constant: decoders, sense amps and
#: wiring dominate very small arrays.  Chosen so the 1120-bit TERP
#: buffer occupies 0.006% of the Nehalem die, matching the paper.
PERIPHERY_K = 1330.0
#: Nehalem (client, 4 cores) die area in mm^2.
NEHALEM_DIE_MM2 = 263.0


@dataclass(frozen=True)
class AreaEstimate:
    bits: int
    bytes: int
    area_um2: float
    die_fraction_percent: float


def sram_array_area_um2(bits: int, *,
                        cell_um2: float = SRAM_CELL_UM2_45NM) -> float:
    """Area of a small SRAM array: cells plus peripheral overhead.

    ``overhead = 1 + K / sqrt(bits)`` captures that a 1-Kb array is
    nearly all periphery while a 1-Mb array is nearly all cells — the
    qualitative shape of Cacti's output for small structures.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    overhead = 1.0 + PERIPHERY_K / math.sqrt(bits)
    return bits * cell_um2 * overhead


def circular_buffer_area(capacity: int = 32, *,
                         die_mm2: float = NEHALEM_DIE_MM2) -> AreaEstimate:
    """Die cost of the TERP circular buffer (Section V-B)."""
    bits = CircularBuffer.storage_bits(capacity)
    area_um2 = sram_array_area_um2(bits)
    fraction = 100.0 * (area_um2 / 1e6) / die_mm2
    return AreaEstimate(bits=bits,
                        bytes=CircularBuffer.storage_bytes(capacity),
                        area_um2=area_um2,
                        die_fraction_percent=fraction)
