"""Simulation parameters (Table II) and the cost model.

Every latency the evaluation depends on is collected here, in cycles
at the 2.2 GHz core clock, exactly as Table II reports them.  The
paper obtained the syscall-class numbers by microbenchmarking a real
machine; for the reproduction they are constants — the same reduction
the paper itself performs before simulating.

:class:`CostModel` turns runtime decisions into charged cycles *and*
attributes them to the Figure 9/10/11 breakdown categories
(attach / detach / rand / cond / other).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.units import cycles_to_ns


@dataclass(frozen=True)
class SimParams:
    """Table II, verbatim."""

    # Processor
    num_cores: int = 4
    freq_ghz: float = 2.2
    rob_entries: int = 128
    issue_width: int = 4

    # Cache
    l1d_size_kb: int = 32
    l1d_ways: int = 8
    l1d_latency: int = 1
    l2_size_mb: int = 1
    l2_ways: int = 16
    l2_latency: int = 8

    # Memory
    dram_latency: int = 120
    nvm_latency: int = 360
    bandwidth_gbs: int = 64

    # TLB
    l1_tlb_entries: int = 64
    l1_tlb_ways: int = 4
    l1_tlb_latency: int = 1
    l2_tlb_entries: int = 1536
    l2_tlb_ways: int = 6
    l2_tlb_latency: int = 4
    tlb_miss_penalty: int = 30

    # Others
    matrix_check: int = 1            # permission matrix check/update
    silent_cond: int = 27            # silent conditional attach/detach
    attach_syscall: int = 4422
    detach_syscall: int = 3058
    randomization: int = 3718
    tlb_invalidation: int = 550


#: The default parameter set used everywhere unless overridden.
DEFAULT_PARAMS = SimParams()


#: Figure 9/10/11 overhead breakdown categories.
CATEGORIES = ("attach", "detach", "rand", "cond", "other")


@dataclass
class CostBreakdown:
    """Cycles charged per category; the unit of the overhead figures."""

    cycles: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES})

    def add(self, category: str, cycles: float) -> None:
        if category not in self.cycles:
            raise KeyError(f"unknown cost category {category!r}")
        self.cycles[category] += cycles

    def merge(self, other: "CostBreakdown") -> None:
        for category, cycles in other.cycles.items():
            self.cycles[category] += cycles

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    def total_ns(self, freq_ghz: float = DEFAULT_PARAMS.freq_ghz) -> int:
        return cycles_to_ns(self.total_cycles, freq_ghz)

    def fractions(self) -> Dict[str, float]:
        total = self.total_cycles
        if total == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: v / total for c, v in self.cycles.items()}


class CostModel:
    """Charges cycles for protection operations, by category.

    The mapping mirrors the evaluation's breakdown:

    * a *performed* attach — ``attach`` (syscall cost);
    * a *performed* detach — ``detach`` (syscall + TLB shootdown);
    * a randomization — ``rand`` (randomization + TLB shootdown,
      all threads suspended);
    * a *silent* conditional attach/detach — ``cond`` (MPK write);
    * permission-matrix checks and other per-access protection costs —
      ``other``.
    """

    def __init__(self, params: SimParams = DEFAULT_PARAMS) -> None:
        self.params = params

    def attach_performed(self) -> float:
        return self.params.attach_syscall

    def detach_performed(self) -> float:
        return self.params.detach_syscall + self.params.tlb_invalidation

    def randomize(self) -> float:
        return self.params.randomization + self.params.tlb_invalidation

    def silent_op(self) -> float:
        return self.params.silent_cond

    def matrix_check(self) -> float:
        return self.params.matrix_check

    def charge_attach(self, breakdown: CostBreakdown, *,
                      performed: bool) -> float:
        cycles = (self.attach_performed() if performed
                  else self.silent_op())
        breakdown.add("attach" if performed else "cond", cycles)
        return cycles

    def charge_detach(self, breakdown: CostBreakdown, *,
                      performed: bool) -> float:
        cycles = (self.detach_performed() if performed
                  else self.silent_op())
        breakdown.add("detach" if performed else "cond", cycles)
        return cycles

    def charge_randomize(self, breakdown: CostBreakdown,
                         *, num_threads_suspended: int = 0) -> float:
        # Suspending more threads costs a little more (the paper notes
        # randomization overhead grows in the multi-threaded case).
        cycles = self.randomize() + \
            self.params.tlb_invalidation * max(0, num_threads_suspended - 1)
        breakdown.add("rand", cycles)
        return cycles

    def charge_access_check(self, breakdown: CostBreakdown) -> float:
        cycles = self.matrix_check()
        breakdown.add("other", cycles)
        return cycles
