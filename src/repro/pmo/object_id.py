"""Relocatable persistent pointers (ObjectIDs).

"To support relocatability, each pointer (64-bit) used in a data
structure consists of a pool ID (ObjectID) and an offset within the
PMO" (Section II).  An :class:`Oid` is that pointer: it survives the
PMO being attached at a different virtual address on every attach,
because consumers translate it through the current attach handle
(``oid_direct``) instead of storing raw VAs.

The packing uses 16 bits of pool id and 48 bits of offset, giving
65535 pools of up to 256 TiB each.  ``Oid.NULL`` (all zeros) plays the
role of a persistent NULL pointer; pool id 0 is reserved for it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import PmoError

POOL_BITS = 16
OFFSET_BITS = 48
MAX_POOL_ID = (1 << POOL_BITS) - 1
MAX_OFFSET = (1 << OFFSET_BITS) - 1


@dataclass(frozen=True, order=True)
class Oid:
    """A 64-bit persistent pointer: (pool_id, offset)."""

    pool_id: int
    offset: int

    def __post_init__(self) -> None:
        if not 0 <= self.pool_id <= MAX_POOL_ID:
            raise PmoError(f"pool id {self.pool_id} out of range")
        if not 0 <= self.offset <= MAX_OFFSET:
            raise PmoError(f"offset {self.offset} out of range")

    def pack(self) -> int:
        """The raw 64-bit representation stored inside PMO data."""
        return (self.pool_id << OFFSET_BITS) | self.offset

    @classmethod
    def unpack(cls, raw: int) -> "Oid":
        if not 0 <= raw < (1 << 64):
            raise PmoError(f"raw OID {raw:#x} is not a 64-bit value")
        return cls(raw >> OFFSET_BITS, raw & MAX_OFFSET)

    def is_null(self) -> bool:
        return self.pool_id == 0 and self.offset == 0

    def add(self, delta: int) -> "Oid":
        """Pointer arithmetic within the same pool."""
        return Oid(self.pool_id, self.offset + delta)

    def __repr__(self) -> str:
        if self.is_null():
            return "Oid.NULL"
        return f"Oid(pool={self.pool_id}, off={self.offset:#x})"


#: The persistent NULL pointer.
Oid.NULL = Oid(0, 0)
