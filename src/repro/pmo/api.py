"""The Table I pool API, as a user-facing facade.

This module packages the substrates into the exact interface prior PMO
work describes (Table I): ``PMO_create``, ``PMO_open``, ``PMO_close``,
``pmalloc``, ``pfree``, ``oid_direct``, ``attach``, ``detach``.  It is
the API the examples and workloads program against.

A :class:`PmoLibrary` owns one process's TERP runtime.  Because the
reproduction is a simulation, the library also carries a manual clock
(:attr:`clock_ns`, advanced with :meth:`tick`) and a current-thread
context (:meth:`thread`) so multi-threaded usage can be expressed in
plain sequential test code.
"""

from __future__ import annotations

import contextlib
import struct
import threading
import time
from typing import TYPE_CHECKING, Any, Iterator, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.obs import Observability
    from repro.pmo.store import PmoStore

from repro.core.errors import (
    InjectedCrash, InjectedFault, IntegrityError, PmoError, TerpError)
from repro.core.permissions import Access
from repro.core.runtime import AttachResult, Handle, TerpRuntime
from repro.core.semantics import EwConsciousSemantics, SemanticsEngine
from repro.core.units import us
from repro.pmo.object_id import Oid
from repro.pmo.pmo import Pmo
from repro.pmo.pool import PmoManager


class PmoLibrary:
    """One process's view of the PMO system (Table I operations)."""

    def __init__(self, *, semantics: Optional[SemanticsEngine] = None,
                 ew_target_us: float = 40.0, seed: int = 2022,
                 strict: bool = True,
                 obs: Optional["Observability"] = None,
                 faults: Optional["FaultPlan"] = None,
                 store: Optional["PmoStore"] = None) -> None:
        if semantics is None:
            semantics = EwConsciousSemantics(us(ew_target_us))
        self.runtime = TerpRuntime(
            semantics, rng=np.random.default_rng(seed), strict=strict,
            obs=obs)
        self.obs = obs
        #: optional durable pool backend; when set, ``PMO_create``
        #: provisions file-backed storage and ``psync`` flushes dirty
        #: pages through the double-write journal.
        self.store = store
        if store is not None:
            self.runtime.manager.storage_factory = store.make_storage
        self._tracer = (obs.tracer if obs is not None and obs.enabled
                        else None)
        #: optional fault-injection plan; sites ``lib.storage_write``
        #: (a checked write fails transiently or crashes the process)
        #: and ``lib.psync_stall`` (the durability point stalls).
        self.faults = faults
        self.clock_ns = 0
        self._thread_id = 0
        #: Re-entrancy guard for multi-threaded embeddings (the terpd
        #: service shares one library across many sessions).  All
        #: Table I entry points take it; it is re-entrant so guarded
        #: methods may call each other.
        self.lock = threading.RLock()

    # -- simulation plumbing ---------------------------------------------

    def tick(self, delta_ns: int = 1) -> int:
        """Advance the manual clock (simulated computation time)."""
        if delta_ns < 0:
            raise TerpError("cannot tick backwards")
        with self.lock:
            self.clock_ns += delta_ns
            return self.clock_ns

    def advance_to(self, now_ns: int) -> int:
        """Move the clock forward to an absolute time (idempotent).

        Unlike :meth:`tick` this tolerates stale timestamps — a caller
        holding an already-elapsed wall-clock reading simply leaves the
        clock alone.  The terpd service drives the library clock from
        the host's monotonic clock through this method.
        """
        with self.lock:
            if now_ns > self.clock_ns:
                self.clock_ns = now_ns
            return self.clock_ns

    @contextlib.contextmanager
    def thread(self, thread_id: int) -> Iterator[None]:
        """Run the enclosed calls as ``thread_id``.

        The lock is held for the whole block, so an entity's sequence
        of calls is atomic with respect to other threads sharing the
        library.
        """
        with self.lock:
            previous = self._thread_id
            self._thread_id = thread_id
            try:
                yield
            finally:
                self._thread_id = previous

    @property
    def manager(self) -> PmoManager:
        return self.runtime.manager

    # -- Table I API -------------------------------------------------------

    def PMO_create(self, name: str, size: int, mode: int = 0o600,
                   *, owner: str = "root") -> Pmo:
        """Create a PMO with the specified size; the caller owns it."""
        with self.lock:
            pmo = self.manager.create(name, size, owner=owner, mode=mode)
            if self.store is not None:
                self.store.register(pmo)
            return pmo

    def PMO_open(self, name: str, requested: Access = Access.RW,
                 *, user: str = "root") -> Pmo:
        """Reopen a PMO by name that was previously created."""
        with self.lock:
            return self.manager.open(name, user=user, requested=requested)

    def PMO_close(self, pmo: Pmo) -> None:
        """Close a PMO (drops one open reference)."""
        with self.lock:
            self.manager.close(pmo)

    def PMO_destroy(self, name: str) -> None:
        """Remove a PMO from the namespace (Table I ``PMO_destroy``).

        The PMO must not be mapped anywhere; remaining open references
        are drained first — destroy is an owner-level operation that
        outranks per-caller open counts.
        """
        with self.lock:
            if not self.manager.exists(name):
                raise PmoError(f"no PMO named {name!r}")
            pmo = self.manager.open(name, user="root",
                                    requested=Access.NONE)
            self.manager.close(pmo)
            if self.runtime.semantics.is_mapped(pmo.pmo_id):
                raise PmoError(
                    f"PMO {name!r} is still attached; detach first")
            while self.manager.open_count(pmo) > 0:
                self.manager.close(pmo)
            self.manager.destroy(name)
            if self.store is not None:
                self.store.destroy(name)

    def pmalloc(self, pmo: Pmo, size: int) -> Oid:
        """Allocate persistent data on ``pmo``; returns its OID."""
        with self.lock:
            return pmo.pmalloc(size)

    def pfree(self, oid: Oid) -> None:
        """Free persistent data pointed to by the OID."""
        with self.lock:
            self.manager.get(oid.pool_id).pfree(oid)

    def oid_direct(self, oid: Oid) -> int:
        """Translate an OID to its current virtual address.

        Requires the owning PMO to be attached; this is the
        relocatable-pointer path every PMO access goes through.
        """
        pmo = self.manager.get(oid.pool_id)
        return self.runtime.space.va_of(pmo.pmo_id, oid.offset)

    def attach(self, pmo: Pmo, permission: Access = Access.RW) -> Handle:
        """Memory-map an opened PMO with the requested permission.

        A quarantined PMO (failed integrity verification with no
        repair source) can only be attached read-only — the corrupt
        bytes stay observable for forensics but never writable.
        """
        with self.lock:
            if pmo.quarantined and permission & Access.WRITE:
                raise IntegrityError(
                    f"PMO {pmo.name!r} is quarantined "
                    f"({pmo.quarantine_reason}); write attach denied",
                    pmo=pmo.name)
            result = self.runtime.attach(self._thread_id, pmo, permission,
                                         self.clock_ns)
            if not result.ok:
                raise PmoError(f"attach failed: {result.decision.reason}")
            return result.handle

    def detach(self, pmo: Pmo) -> None:
        """Unmap an attached PMO from the process address space."""
        with self.lock:
            self.runtime.detach(self._thread_id, pmo, self.clock_ns)

    def psync(self, pmo: Pmo) -> int:
        """Durability point (Table I ``psync``): persist pending writes.

        Commits the PMO's open transaction, if any, so every logged
        write reaches its home location.  With a durable backend the
        PMO's dirty pages — including write-through (non-transactional)
        writes — are then flushed to its pool file through the
        double-write journal.  Returns the number of writes + pages
        made durable; on the pure in-memory backend a no-transaction
        psync is a (valid) no-op returning 0.
        """
        tracer = self._tracer
        t0 = tracer.clock() if tracer is not None else 0
        if self.faults is not None:
            rule = self.faults.fire("lib.psync_stall")
            if rule is not None and rule.delay_ns > 0:
                # Media stall at the durability point.  Slept outside
                # the library lock so other sessions keep moving.
                time.sleep(rule.delay_ns / 1e9)
        with self.lock:
            if pmo.quarantined:
                raise IntegrityError(
                    f"PMO {pmo.name!r} is quarantined "
                    f"({pmo.quarantine_reason}); psync denied",
                    pmo=pmo.name)
            flushed = 0
            if pmo.log.in_transaction:
                flushed = len(pmo.log.pending_writes)
                pmo.commit_tx()
            if self.store is not None and \
                    getattr(pmo.storage, "dirty", None):
                # The dirty check (after any tx commit, which itself
                # dirties pages) is the zero-I/O fast path: a psync
                # with nothing pending never touches the store — no
                # journal round-trip, no file open, no lock traffic.
                flushed += self.store.flush(pmo)
        if tracer is not None:
            tracer.record_since("lib.psync", t0, pmo=pmo.name,
                                flushed=flushed)
        return flushed

    def psync_submit(self, pmo: Pmo) -> "Tuple[int, Optional[Any]]":
        """``psync``, split for group commit: snapshot now, fsync later.

        Commits the open transaction and *snapshots* the dirty pages
        onto the store's group committer instead of flushing inline.
        Returns ``(count, ticket)``: ``count`` is what is already
        certain (log writes committed), ``ticket`` is ``None`` when
        there was nothing to flush (the zero-dirty fast path) or a
        :class:`~repro.pmo.store.CommitTicket` whose ``wait()`` —
        callable off the serving thread — adds the flushed page count
        once the batch is durable.  Durability semantics are those of
        :meth:`psync`: nothing is promised until the ticket retires.
        """
        tracer = self._tracer
        t0 = tracer.clock() if tracer is not None else 0
        if self.faults is not None:
            rule = self.faults.fire("lib.psync_stall")
            if rule is not None and rule.delay_ns > 0:
                time.sleep(rule.delay_ns / 1e9)
        with self.lock:
            if pmo.quarantined:
                raise IntegrityError(
                    f"PMO {pmo.name!r} is quarantined "
                    f"({pmo.quarantine_reason}); psync denied",
                    pmo=pmo.name)
            flushed = 0
            if pmo.log.in_transaction:
                flushed = len(pmo.log.pending_writes)
                pmo.commit_tx()
            ticket = None
            if self.store is not None and \
                    getattr(pmo.storage, "dirty", None):
                ticket = self.store.flush_async(pmo)
        if tracer is not None:
            tracer.record_since("lib.psync", t0, pmo=pmo.name,
                                flushed=flushed)
        return flushed, ticket

    # -- guarded data access -------------------------------------------------

    def read(self, oid: Oid, n: int) -> bytes:
        """Checked read: semantics- and permission-validated."""
        with self.lock:
            pmo = self.manager.get(oid.pool_id)
            self.runtime.access(self._thread_id, pmo, oid.offset,
                                Access.READ, self.clock_ns)
            return pmo.read(oid.offset, n)

    def write(self, oid: Oid, data: bytes) -> None:
        """Checked write."""
        if self.faults is not None:
            rule = self.faults.fire("lib.storage_write")
            if rule is not None:
                # The fault fires before any byte moves: a transient
                # device error (or a crash) never leaves a torn write.
                cls = InjectedCrash if rule.kind == "crash" \
                    else InjectedFault
                raise cls("injected: storage write failed",
                          site="lib.storage_write")
        with self.lock:
            pmo = self.manager.get(oid.pool_id)
            if pmo.quarantined:
                raise IntegrityError(
                    f"PMO {pmo.name!r} is quarantined "
                    f"({pmo.quarantine_reason}); write denied",
                    pmo=pmo.name)
            self.runtime.access(self._thread_id, pmo, oid.offset,
                                Access.WRITE, self.clock_ns)
            pmo.write(oid.offset, data)

    def read_u64(self, oid: Oid) -> int:
        return struct.unpack("<Q", self.read(oid, 8))[0]

    def write_u64(self, oid: Oid, value: int) -> None:
        self.write(oid, struct.pack("<Q", value & ((1 << 64) - 1)))

    # -- file persistence -------------------------------------------------

    def save(self, pmo: Pmo, path) -> int:
        """Serialize a PMO's persistent bytes to a file."""
        from repro.pmo.serialize import save_pmo
        return save_pmo(pmo, path)

    def load(self, path) -> Pmo:
        """Load a PMO file into this library's namespace.

        The PMO goes through full crash recovery and keeps its
        original id and name (both must be free here) — the id is
        embedded in every OID stored inside the PMO's data.
        """
        from repro.pmo.serialize import load_pmo
        return self.manager.adopt(load_pmo(path))
