"""Persistent-heap allocator inside a PMO (``pmalloc``/``pfree``).

A first-fit free-list allocator with block headers and coalescing,
operating on offsets within one PMO's data area.  It is deliberately a
real allocator rather than a bump pointer: the Figure 8 experiment
measures *object dead time* — the gap between an object's last write
and its deallocation — which only exists when objects are actually
freed and their slots reused.

Layout: every block is ``[8-byte header][payload]``.  The header packs
the block's payload size and an allocated bit.  Free blocks are
additionally threaded through an in-memory free list (rebuilt on
recovery by scanning headers, as a PM allocator would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import OutOfPersistentMemory, PmoError

#: Header occupies 16 bytes (u64 size+flag word, 8 bytes pad) so that
#: payloads stay 16-byte aligned when block sizes are multiples of 16.
HEADER_SIZE = 16
MIN_PAYLOAD = 16
ALIGNMENT = 16
_ALLOCATED_BIT = 1 << 63


def _align(size: int) -> int:
    return (size + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


@dataclass
class _Block:
    offset: int          # offset of the header within the heap area
    payload_size: int
    allocated: bool

    @property
    def total_size(self) -> int:
        return HEADER_SIZE + self.payload_size

    @property
    def payload_offset(self) -> int:
        return self.offset + HEADER_SIZE


class HeapAllocator:
    """First-fit allocator over ``[base, base+size)`` of a PMO.

    The allocator reads and writes headers through the ``memory``
    object (anything exposing ``read_u64(off)`` / ``write_u64(off,
    val)``), so header state genuinely lives in the PMO's persistent
    bytes and survives recovery.
    """

    def __init__(self, memory, base: int, size: int, *,
                 recover: bool = False) -> None:
        if size < HEADER_SIZE + MIN_PAYLOAD:
            raise PmoError("heap area too small")
        self.memory = memory
        self.base = base
        self.size = size
        self.allocated_bytes = 0
        self.alloc_count = 0
        self.free_count = 0
        if recover:
            self._rebuild_free_list()
        else:
            self._format()

    # -- header I/O ---------------------------------------------------------

    def _read_header(self, offset: int) -> _Block:
        raw = self.memory.read_u64(self.base + offset)
        return _Block(offset=offset,
                      payload_size=raw & ~_ALLOCATED_BIT,
                      allocated=bool(raw & _ALLOCATED_BIT))

    def _write_header(self, block: _Block) -> None:
        raw = block.payload_size | (_ALLOCATED_BIT if block.allocated else 0)
        self.memory.write_u64(self.base + block.offset, raw)

    def _format(self) -> None:
        whole = _Block(offset=0, payload_size=self.size - HEADER_SIZE,
                       allocated=False)
        self._write_header(whole)
        self._free_list: List[int] = [0]

    def _rebuild_free_list(self) -> None:
        """Recovery path: scan headers to find free blocks."""
        self._free_list = []
        self.allocated_bytes = 0
        for block in self._walk():
            if block.allocated:
                self.allocated_bytes += block.payload_size
            else:
                self._free_list.append(block.offset)

    def _walk(self) -> Iterator[_Block]:
        offset = 0
        while offset + HEADER_SIZE <= self.size:
            block = self._read_header(offset)
            if block.payload_size == 0 or block.total_size + offset > self.size:
                raise PmoError(f"corrupt heap header at offset {offset}")
            yield block
            offset += block.total_size

    # -- allocation -----------------------------------------------------------

    def allocate(self, size: int) -> int:
        """Allocate ``size`` payload bytes; returns the payload offset."""
        if size <= 0:
            raise PmoError("allocation size must be positive")
        needed = max(_align(size), MIN_PAYLOAD)
        for i, offset in enumerate(self._free_list):
            block = self._read_header(offset)
            if block.allocated or block.payload_size < needed:
                continue
            self._free_list.pop(i)
            leftover = block.payload_size - needed
            if leftover >= HEADER_SIZE + MIN_PAYLOAD:
                # Split: the tail becomes a new free block.
                tail = _Block(offset=offset + HEADER_SIZE + needed,
                              payload_size=leftover - HEADER_SIZE,
                              allocated=False)
                self._write_header(tail)
                self._free_list.append(tail.offset)
                block.payload_size = needed
            block.allocated = True
            self._write_header(block)
            self.allocated_bytes += block.payload_size
            self.alloc_count += 1
            return block.payload_offset
        raise OutOfPersistentMemory(
            f"cannot allocate {size} bytes (used {self.allocated_bytes}"
            f" of {self.size})")

    def free(self, payload_offset: int) -> None:
        """Free a previously allocated payload; coalesces neighbours."""
        header_offset = payload_offset - HEADER_SIZE
        if not 0 <= header_offset < self.size:
            raise PmoError(f"offset {payload_offset} outside heap")
        block = self._read_header(header_offset)
        if not block.allocated:
            raise PmoError(f"double free at offset {payload_offset}")
        block.allocated = False
        self.allocated_bytes -= block.payload_size
        self.free_count += 1
        self._write_header(block)
        self._free_list.append(block.offset)
        self._coalesce()

    def _coalesce(self) -> None:
        """Merge adjacent free blocks (full scan; heaps here are small)."""
        free = sorted(self._free_list)
        merged: List[Tuple[int, int]] = []  # (offset, payload)
        for offset in free:
            block = self._read_header(offset)
            if merged and merged[-1][0] + HEADER_SIZE + merged[-1][1] == offset:
                prev_off, prev_payload = merged[-1]
                merged[-1] = (prev_off,
                              prev_payload + HEADER_SIZE + block.payload_size)
            else:
                merged.append((offset, block.payload_size))
        self._free_list = []
        for offset, payload in merged:
            self._write_header(_Block(offset, payload, allocated=False))
            self._free_list.append(offset)

    # -- introspection -----------------------------------------------------

    def free_bytes(self) -> int:
        return sum(self._read_header(o).payload_size for o in self._free_list)

    def block_count(self) -> Tuple[int, int]:
        """(allocated, free) block counts."""
        alloc = free = 0
        for block in self._walk():
            if block.allocated:
                alloc += 1
            else:
                free += 1
        return alloc, free

    def is_allocated(self, payload_offset: int) -> bool:
        header_offset = payload_offset - HEADER_SIZE
        if not 0 <= header_offset < self.size:
            return False
        try:
            return self._read_header(header_offset).allocated
        except PmoError:
            return False
