"""Typed array views over PMO storage (``PmoArray``).

The SPEC-style kernels work on large numeric arrays that the paper
allocates as PMOs ("each heap object larger than 128KB as a PMO").
:class:`PmoArray` gives them a numpy-typed window over a pmalloc'd
region: reads and writes go through the PMO's byte storage (and its
transaction log when one is open), so kernel data genuinely lives in
persistent memory and survives crash/recover cycles.

Element access is deliberately chunk-based (``load``/``store`` of
slices) rather than a full ``__getitem__`` emulation of ndarray — the
kernels read and write tiles, and a tile round-trip through the PMO
is the realistic access pattern.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.errors import PmoError
from repro.pmo.object_id import Oid


class PmoArray:
    """A 1-D or 2-D typed array stored in a PMO allocation."""

    def __init__(self, pmo, oid: Oid, shape: Tuple[int, ...],
                 dtype=np.float64) -> None:
        self.pmo = pmo
        self.oid = oid
        self.shape = tuple(int(s) for s in shape)
        if not 1 <= len(self.shape) <= 2:
            raise PmoError("PmoArray supports 1-D and 2-D shapes")
        self.dtype = np.dtype(dtype)
        self.size = int(np.prod(self.shape))
        self.nbytes = self.size * self.dtype.itemsize

    @classmethod
    def create(cls, pmo, shape, dtype=np.float64) -> "PmoArray":
        """Allocate the array on ``pmo`` (zero-initialized)."""
        size = int(np.prod(shape)) * np.dtype(dtype).itemsize
        oid = pmo.pmalloc(size)
        return cls(pmo, oid, tuple(np.atleast_1d(shape)), dtype)

    # -- flat helpers ---------------------------------------------------

    def _check_range(self, start: int, count: int) -> None:
        if not 0 <= start <= start + count <= self.size:
            raise PmoError(
                f"range [{start}, {start + count}) outside array of "
                f"{self.size} elements")

    def _flat_offset(self, index: int) -> int:
        return self.oid.offset + index * self.dtype.itemsize

    # -- chunk I/O ----------------------------------------------------------

    def load(self, start: int = 0,
             count: Optional[int] = None) -> np.ndarray:
        """Read ``count`` elements starting at flat index ``start``."""
        count = self.size - start if count is None else count
        self._check_range(start, count)
        raw = self.pmo.read(self._flat_offset(start),
                            count * self.dtype.itemsize)
        return np.frombuffer(raw, dtype=self.dtype).copy()

    def store(self, values: np.ndarray, start: int = 0) -> None:
        """Write a flat chunk of elements at ``start``."""
        values = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        self._check_range(start, values.size)
        self.pmo.write(self._flat_offset(start), values.tobytes())

    def load_all(self) -> np.ndarray:
        return self.load().reshape(self.shape)

    def store_all(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != self.shape:
            raise PmoError(
                f"shape {values.shape} != array shape {self.shape}")
        self.store(values.ravel())

    # -- 2-D row access ---------------------------------------------------------

    def _row_start(self, row: int) -> int:
        if len(self.shape) != 2:
            raise PmoError("row access requires a 2-D array")
        rows, cols = self.shape
        if not 0 <= row < rows:
            raise PmoError(f"row {row} out of range")
        return row * cols

    def load_row(self, row: int) -> np.ndarray:
        start = self._row_start(row)
        return self.load(start, self.shape[1])

    def store_row(self, row: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self.dtype).ravel()
        if values.size != self.shape[1]:
            raise PmoError("row length mismatch")
        self.store(values, self._row_start(row))

    # -- scalar convenience ---------------------------------------------------

    def get(self, index: int) -> float:
        self._check_range(index, 1)
        raw = self.pmo.read(self._flat_offset(index),
                            self.dtype.itemsize)
        return np.frombuffer(raw, dtype=self.dtype)[0].item()

    def set(self, index: int, value) -> None:
        self._check_range(index, 1)
        self.pmo.write(self._flat_offset(index),
                       np.asarray([value], dtype=self.dtype).tobytes())
