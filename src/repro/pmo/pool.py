"""PMO namespace and lifecycle management (Table I semantics).

PMOs "can be managed by the OS similar to files (in terms of namespace
and permission)": they are created with a name and a mode, reopened by
name across runs, and access is checked against the owner and mode
bits.  :class:`PmoManager` is that OS-side registry.  Pool ids start at
1 — pool id 0 is reserved for ``Oid.NULL``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.errors import PmoError
from repro.core.permissions import Access
from repro.pmo.pmo import Pmo, SparseBytes

#: Mode bits, a deliberately file-like subset: owner rw, others rw.
MODE_OWNER_READ = 0o400
MODE_OWNER_WRITE = 0o200
MODE_OTHER_READ = 0o004
MODE_OTHER_WRITE = 0o002


def mode_allows(mode: int, *, is_owner: bool, requested: Access) -> bool:
    """Check a file-style mode against a requested access."""
    read_bit = MODE_OWNER_READ if is_owner else MODE_OTHER_READ
    write_bit = MODE_OWNER_WRITE if is_owner else MODE_OTHER_WRITE
    if requested & Access.READ and not mode & read_bit:
        return False
    if requested & Access.WRITE and not mode & write_bit:
        return False
    return True


class PmoManager:
    """The system-wide registry of PMOs: create / open / close / destroy."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Pmo] = {}
        self._by_id: Dict[int, Pmo] = {}
        self._open_count: Dict[int, int] = {}
        self._next_id = 1
        self._id_start = 1
        self._id_step = 1
        #: When set (durable pool), ``create`` asks this for the
        #: backing storage — ``(name, size_bytes) -> SparseBytes``.
        self.storage_factory: Optional[
            Callable[[str, int], SparseBytes]] = None

    def set_id_namespace(self, *, start: int, step: int) -> None:
        """Partition the pmo_id space: allocate ``start, start+step, …``.

        A cluster shard ``i`` of ``N`` calls this with ``start=i+1,
        step=N`` so every id it ever mints satisfies
        ``(pmo_id - 1) % N == i`` — the router recovers the owning
        shard from an Oid's pool id with arithmetic alone, and two
        shards can never collide even across restarts.  Must be called
        before any PMO exists (ids already handed out are immutable).
        """
        if start < 1 or step < 1:
            raise PmoError("id namespace needs start >= 1, step >= 1")
        if self._by_id:
            raise PmoError("cannot renumber a populated PMO namespace")
        self._id_start = start
        self._id_step = step
        self._next_id = start

    def create(self, name: str, size_bytes: int, *, owner: str = "root",
               mode: int = 0o600) -> Pmo:
        """``PMO_create``: make a new PMO; the caller becomes the owner."""
        if name in self._by_name:
            raise PmoError(f"PMO {name!r} already exists")
        storage = self.storage_factory(name, size_bytes) \
            if self.storage_factory is not None else None
        pmo = Pmo(self._next_id, name, size_bytes, owner=owner,
                  mode=mode, storage=storage)
        self._next_id += self._id_step
        self._by_name[name] = pmo
        self._by_id[pmo.pmo_id] = pmo
        self._open_count[pmo.pmo_id] = 1
        return pmo

    def adopt(self, pmo: Pmo) -> Pmo:
        """Register an existing PMO (e.g. loaded from a file) under
        its own id and name.

        The id must be preserved because every OID stored inside the
        PMO's data embeds it; a collision with a live PMO is an error.
        """
        if pmo.name in self._by_name:
            raise PmoError(f"PMO {pmo.name!r} already exists")
        if pmo.pmo_id in self._by_id:
            raise PmoError(f"PMO id {pmo.pmo_id} already in use")
        self._by_name[pmo.name] = pmo
        self._by_id[pmo.pmo_id] = pmo
        self._open_count[pmo.pmo_id] = 1
        if pmo.pmo_id >= self._next_id:
            # Advance to the smallest id beyond the adopted one that
            # stays in this manager's residue class (start mod step).
            steps = (pmo.pmo_id + self._id_step -
                     self._id_start) // self._id_step
            self._next_id = self._id_start + steps * self._id_step
        return pmo

    def open(self, name: str, *, user: str = "root",
             requested: Access = Access.RW) -> Pmo:
        """``PMO_open``: reopen an existing PMO by name, checking mode."""
        pmo = self._by_name.get(name)
        if pmo is None:
            raise PmoError(f"no PMO named {name!r}")
        if not mode_allows(pmo.mode, is_owner=(user == pmo.owner),
                           requested=requested):
            raise PmoError(
                f"user {user!r} denied {requested} on PMO {name!r}")
        self._open_count[pmo.pmo_id] += 1
        return pmo

    def close(self, pmo: Pmo) -> None:
        """``PMO_close``: drop one open reference."""
        count = self._open_count.get(pmo.pmo_id, 0)
        if count <= 0:
            raise PmoError(f"PMO {pmo.name!r} is not open")
        self._open_count[pmo.pmo_id] = count - 1

    def destroy(self, name: str) -> None:
        """Remove a PMO from the namespace; it must not be open."""
        pmo = self._by_name.get(name)
        if pmo is None:
            raise PmoError(f"no PMO named {name!r}")
        if self._open_count.get(pmo.pmo_id, 0) > 0:
            raise PmoError(f"PMO {name!r} is still open")
        del self._by_name[name]
        del self._by_id[pmo.pmo_id]
        del self._open_count[pmo.pmo_id]

    def get(self, pmo_id: int) -> Pmo:
        pmo = self._by_id.get(pmo_id)
        if pmo is None:
            raise PmoError(f"no PMO with id {pmo_id}")
        return pmo

    def lookup(self, name: str) -> Pmo:
        """Resolve a PMO by name *without* bumping the open count.

        For internal resolution (service dispatch, cross-process
        queries) where no new open reference is being handed out.
        """
        pmo = self._by_name.get(name)
        if pmo is None:
            raise PmoError(f"no PMO named {name!r}")
        return pmo

    def exists(self, name: str) -> bool:
        return name in self._by_name

    def open_count(self, pmo: Pmo) -> int:
        return self._open_count.get(pmo.pmo_id, 0)

    def all_pmos(self) -> List[Pmo]:
        return list(self._by_id.values())

    def simulate_reboot(self) -> None:
        """Crash every PMO and recover it — the cross-run persistence
        path: names and bytes survive, volatile state is rebuilt."""
        for pmo in self._by_id.values():
            pmo.crash()
            pmo.recover()
        for pmo_id in self._open_count:
            self._open_count[pmo_id] = 0
