"""PMO file persistence: save/load a PMO's bytes across runs.

A PMO's defining property is surviving process termination; within
one Python process :meth:`PmoManager.simulate_reboot` covers that,
and this module extends it across *actual* process boundaries: the
sparse storage serializes to a compact file (only resident pages are
written) and loads back through the normal recovery path — header
validation, redo-log replay, allocator rescan — so a file produced by
a crashed run restores to a consistent state.

File format (little endian)::

    magic "TERPPMO1" | u16 pmo_id | u16 name_len | name utf-8
    u64 size_bytes | u64 log_size | u32 page_count
    page_count x (u64 page_index | 4096 raw bytes)
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import Union

from repro.core.errors import PmoError
from repro.core.units import PAGE_SIZE
from repro.pmo.pmo import Pmo, SparseBytes

FILE_MAGIC = b"TERPPMO1"
_HEAD = struct.Struct("<HH")          # pmo_id, name length
_GEOMETRY = struct.Struct("<QQI")     # size, log size, page count
_PAGE_HDR = struct.Struct("<Q")


def save_pmo(pmo: Pmo, path: Union[str, Path]) -> int:
    """Write the PMO's persistent bytes to ``path``; returns bytes
    written.  Only resident (touched) pages are stored."""
    storage = pmo.storage
    pages = sorted(storage._pages.items())
    buffer = io.BytesIO()
    name_bytes = pmo.name.encode("utf-8")
    buffer.write(FILE_MAGIC)
    buffer.write(_HEAD.pack(pmo.pmo_id, len(name_bytes)))
    buffer.write(name_bytes)
    buffer.write(_GEOMETRY.pack(pmo.size_bytes, pmo._log_size,
                                len(pages)))
    for index, page in pages:
        buffer.write(_PAGE_HDR.pack(index))
        buffer.write(bytes(page))
    data = buffer.getvalue()
    Path(path).write_bytes(data)
    return len(data)


def load_pmo(path: Union[str, Path]) -> Pmo:
    """Load a PMO from ``path`` and run full crash recovery on it."""
    raw = Path(path).read_bytes()
    view = memoryview(raw)
    if bytes(view[:8]) != FILE_MAGIC:
        raise PmoError(f"{path}: not a TERP PMO file")
    offset = 8
    pmo_id, name_len = _HEAD.unpack_from(view, offset)
    offset += _HEAD.size
    name = bytes(view[offset:offset + name_len]).decode("utf-8")
    offset += name_len
    size_bytes, log_size, page_count = _GEOMETRY.unpack_from(view,
                                                             offset)
    offset += _GEOMETRY.size
    storage = SparseBytes(size_bytes)
    for _ in range(page_count):
        (index,) = _PAGE_HDR.unpack_from(view, offset)
        offset += _PAGE_HDR.size
        page = view[offset:offset + PAGE_SIZE]
        if len(page) != PAGE_SIZE:
            raise PmoError(f"{path}: truncated page {index}")
        storage._pages[index] = bytearray(page)
        offset += PAGE_SIZE
    if offset != len(raw):
        raise PmoError(f"{path}: trailing garbage "
                       f"({len(raw) - offset} bytes)")
    return Pmo.from_snapshot(pmo_id, name, storage, log_size=log_size)
