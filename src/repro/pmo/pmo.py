"""The persistent memory object: storage, layout, and crash simulation.

A :class:`Pmo` is a container for data structures that lives beyond
process termination (Section II).  It owns:

* **sparse byte storage** — pages materialize on first touch, so a
  1GB PMO costs almost nothing until used;
* a small **header** (magic, size, root OID slot);
* a **redo-log region** providing crash consistency;
* a **heap area** managed by ``pmalloc``/``pfree``;
* an **embedded page-table subtree** (Figure 1a) enabling O(1)
  attach/detach — built lazily and cached.

Simulated crashes drop all volatile state (allocator free lists, open
transactions); :meth:`Pmo.recover` rebuilds from the persistent bytes,
replaying the redo log exactly as a restart would.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.core.errors import PmoError
from repro.core.units import KIB, PAGE_SIZE
from repro.mem.page_table import LazySubtreeNode, build_subtree_lazy
from repro.pmo.allocator import HeapAllocator
from repro.pmo.object_id import Oid
from repro.pmo.persistence import RedoLog

MAGIC = b"PMO2022!"
HEADER_SIZE = 64
ROOT_OID_OFFSET = 16
DEFAULT_LOG_SIZE = 256 * KIB


class SparseBytes:
    """Zero-initialized sparse byte storage backed by 4KB pages."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._pages: Dict[int, bytearray] = {}

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def read(self, offset: int, n: int) -> bytes:
        if not 0 <= offset <= offset + n <= self.size:
            raise PmoError(f"read [{offset}, {offset + n}) out of bounds")
        out = bytearray()
        while n:
            page_idx, page_off = divmod(offset, PAGE_SIZE)
            take = min(n, PAGE_SIZE - page_off)
            page = self._pages.get(page_idx)
            if page is None:
                out.extend(b"\x00" * take)
            else:
                out.extend(page[page_off:page_off + take])
            offset += take
            n -= take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        n = len(data)
        if not 0 <= offset <= offset + n <= self.size:
            raise PmoError(f"write [{offset}, {offset + n}) out of bounds")
        pos = 0
        while pos < n:
            page_idx, page_off = divmod(offset + pos, PAGE_SIZE)
            take = min(n - pos, PAGE_SIZE - page_off)
            self._page(page_idx)[page_off:page_off + take] = \
                data[pos:pos + take]
            pos += take

    def read_u64(self, offset: int) -> int:
        return struct.unpack("<Q", self.read(offset, 8))[0]

    def write_u64(self, offset: int, value: int) -> None:
        self.write(offset, struct.pack("<Q", value & ((1 << 64) - 1)))

    def read_u32(self, offset: int) -> int:
        return struct.unpack("<I", self.read(offset, 4))[0]

    def write_u32(self, offset: int, value: int) -> None:
        self.write(offset, struct.pack("<I", value & 0xFFFFFFFF))

    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def snapshot(self) -> "SparseBytes":
        """Deep copy of the current bytes — what a power failure at
        this instant would leave on the persistent media."""
        copy = SparseBytes(self.size)
        copy._pages = {idx: bytearray(page)
                       for idx, page in self._pages.items()}
        return copy


class Pmo:
    """One persistent memory object.

    Parameters mirror ``PMO_create`` from Table I.  ``log_size`` sizes
    the redo-log region; the remainder of the PMO is heap.
    """

    def __init__(self, pmo_id: int, name: str, size_bytes: int, *,
                 owner: str = "root", mode: int = 0o600,
                 log_size: int = DEFAULT_LOG_SIZE,
                 storage: Optional[SparseBytes] = None) -> None:
        min_size = HEADER_SIZE + log_size + 4 * KIB
        if size_bytes < min_size:
            raise PmoError(f"PMO must be at least {min_size} bytes")
        if storage is not None and storage.size != size_bytes:
            raise PmoError(
                f"storage size {storage.size} != PMO size {size_bytes}")
        self.pmo_id = pmo_id
        self.name = name
        self.size_bytes = size_bytes
        self.owner = owner
        self.mode = mode
        self.storage = storage if storage is not None \
            else SparseBytes(size_bytes)
        self._log_base = HEADER_SIZE
        self._log_size = log_size
        self._heap_base = HEADER_SIZE + log_size
        self.quarantined = False
        self.quarantine_reason = ""
        self.storage.write(0, MAGIC)
        self.storage.write_u64(8, size_bytes)
        self.log = RedoLog(self.storage, self._log_base, log_size)
        self.heap = HeapAllocator(self.storage, self._heap_base,
                                  size_bytes - self._heap_base)
        self._subtree: Optional[LazySubtreeNode] = None

    @classmethod
    def from_snapshot(cls, pmo_id: int, name: str,
                      storage: SparseBytes, *,
                      log_size: int = DEFAULT_LOG_SIZE,
                      owner: str = "root",
                      mode: int = 0o600) -> "Pmo":
        """Rebuild a PMO from a byte snapshot (crash-injection path).

        The returned object runs the full recovery procedure — header
        validation, redo-log replay, allocator rescan — exactly as a
        reboot after a power failure at the snapshot instant would.
        """
        pmo = cls._shell(pmo_id, name, storage, log_size=log_size,
                         owner=owner, mode=mode)
        pmo.recover()
        return pmo

    @classmethod
    def quarantined_shell(cls, pmo_id: int, name: str,
                          storage: SparseBytes, *,
                          log_size: int = DEFAULT_LOG_SIZE,
                          owner: str = "root",
                          mode: int = 0o600) -> "Pmo":
        """A PMO whose bytes failed verification too badly for normal
        recovery: readable as-is, no log replay, no allocator.  Used by
        the durable store so forensics on a rotted pool stay possible.
        """
        pmo = cls._shell(pmo_id, name, storage, log_size=log_size,
                         owner=owner, mode=mode)
        pmo.log = RedoLog(SparseBytes(HEADER_SIZE + log_size),
                          HEADER_SIZE, log_size)
        pmo.heap = None
        pmo.quarantine("recovery skipped: persistent bytes failed "
                       "verification")
        return pmo

    @classmethod
    def _shell(cls, pmo_id: int, name: str, storage: SparseBytes, *,
               log_size: int, owner: str, mode: int) -> "Pmo":
        pmo = cls.__new__(cls)
        pmo.pmo_id = pmo_id
        pmo.name = name
        pmo.size_bytes = storage.size
        pmo.owner = owner
        pmo.mode = mode
        pmo.storage = storage
        pmo._log_base = HEADER_SIZE
        pmo._log_size = log_size
        pmo._heap_base = HEADER_SIZE + log_size
        pmo._subtree = None
        pmo.quarantined = False
        pmo.quarantine_reason = ""
        return pmo

    def quarantine(self, reason: str) -> None:
        """Mark the PMO corrupt: reads stay possible, writes are denied
        at the library layer, and the condition is surfaced in metrics
        and on the audit timeline by whoever called us."""
        self.quarantined = True
        if reason and reason not in self.quarantine_reason:
            self.quarantine_reason = (
                f"{self.quarantine_reason}; {reason}"
                if self.quarantine_reason else reason)

    # -- identity / mapping support ---------------------------------------

    @property
    def subtree(self) -> LazySubtreeNode:
        """The embedded page-table subtree (built on first attach)."""
        if self._subtree is None:
            self._subtree = build_subtree_lazy(f"pmo{self.pmo_id}",
                                               self.size_bytes)
        return self._subtree

    # -- persistent pointers -------------------------------------------------

    def oid_of(self, offset: int) -> Oid:
        if not 0 <= offset < self.size_bytes:
            raise PmoError(f"offset {offset} outside PMO {self.name!r}")
        return Oid(self.pmo_id, offset)

    def offset_of(self, oid: Oid) -> int:
        if oid.pool_id != self.pmo_id:
            raise PmoError(
                f"OID for pool {oid.pool_id} used on PMO {self.pmo_id}")
        return oid.offset

    @property
    def root_oid(self) -> Oid:
        """The persistent root pointer (entry point into the PMO)."""
        raw = self.storage.read_u64(ROOT_OID_OFFSET)
        return Oid.unpack(raw)

    @root_oid.setter
    def root_oid(self, oid: Oid) -> None:
        self.storage.write_u64(ROOT_OID_OFFSET, oid.pack())

    # -- allocation ------------------------------------------------------------

    def pmalloc(self, size: int) -> Oid:
        """Allocate persistent data; returns the OID of the first byte."""
        offset = self.heap.allocate(size)
        return Oid(self.pmo_id, self._heap_base + offset)

    def pfree(self, oid: Oid) -> None:
        offset = self.offset_of(oid)
        self.heap.free(offset - self._heap_base)

    # -- data access (storage level) --------------------------------------------

    def read(self, offset: int, n: int) -> bytes:
        data = self.storage.read(offset, n)
        if not self.log.in_transaction or not self.log.pending_writes:
            return data
        # Read-your-writes: overlay the open transaction's pending
        # redo-log entries (they have not reached home locations yet).
        buf = bytearray(data)
        for w_off, w_data in self.log.pending_writes:
            lo = max(offset, w_off)
            hi = min(offset + n, w_off + len(w_data))
            if lo < hi:
                buf[lo - offset:hi - offset] = \
                    w_data[lo - w_off:hi - w_off]
        return bytes(buf)

    def write(self, offset: int, data: bytes) -> None:
        if self.log.in_transaction:
            self.log.log_write(offset, data)
        else:
            self.storage.write(offset, data)

    def read_u64(self, offset: int) -> int:
        return struct.unpack("<Q", self.read(offset, 8))[0]

    def write_u64(self, offset: int, value: int) -> None:
        self.write(offset, struct.pack("<Q", value & ((1 << 64) - 1)))

    # -- transactions ----------------------------------------------------------

    def begin_tx(self) -> int:
        return self.log.begin()

    def commit_tx(self) -> None:
        self.log.commit()

    def abort_tx(self) -> None:
        self.log.abort()

    # -- crash simulation --------------------------------------------------------

    def crash(self) -> None:
        """Drop all volatile state, keeping only the persistent bytes.

        Equivalent to a power failure: the open transaction (if any)
        is lost, allocator free lists vanish.
        """
        self._subtree = None
        # Volatile objects are simply discarded; recover() rebuilds.
        self.log = None
        self.heap = None

    def recover(self) -> None:
        """Restart path: validate header, replay log, rebuild allocator."""
        if self.storage.read(0, len(MAGIC)) != MAGIC:
            raise PmoError(f"PMO {self.name!r} has a corrupt header")
        if self.storage.read_u64(8) != self.size_bytes:
            raise PmoError(f"PMO {self.name!r} header size mismatch")
        self.log = RedoLog(self.storage, self._log_base, self._log_size,
                           recover=True)
        self.heap = HeapAllocator(self.storage, self._heap_base,
                                  self.size_bytes - self._heap_base,
                                  recover=True)

    def __repr__(self) -> str:
        return (f"Pmo(id={self.pmo_id}, name={self.name!r}, "
                f"size={self.size_bytes})")
