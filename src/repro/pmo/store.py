"""Durable file-backed pool storage with integrity checking.

The paper's PMOs "live beyond process termination" (Section II); this
module gives the reproduction a pool backend where that is literally
true.  Each PMO owns one file in the pool directory, written with
page-granular dirty tracking behind the existing
:class:`~repro.pmo.pmo.SparseBytes` read/write interface:

* **page slots with CRC trailers** — every 4KB page is stored in a
  fixed slot followed by an 8-byte trailer (CRC32 of the page bytes +
  a presence marker), so any torn or rotted page is *detectable*;
* **double-write journal** — a flush first writes every dirty page to
  the PMO's journal file (and fsyncs it), then to the home slots, then
  retires the journal.  A crash mid-flush therefore leaves either an
  unapplied journal (home file untouched by this batch) or a complete
  journal that can *repair* any torn home page;
* **quarantine** — a page that fails verification with no journal copy
  is bit rot: the owning PMO is quarantined (readable, never writable)
  and the failure surfaces as a typed
  :class:`~repro.core.errors.IntegrityError`;
* **scrub-on-sweep** — :meth:`PmoStore.scrub` verifies a bounded
  number of at-rest pages per call; the terpd sweeper drives it so
  silent corruption is found while the daemon is alive, not at the
  next restart.

The durability point is ``psync`` (Table I): writes dirty pages in
memory, ``psync`` flushes them.  This mirrors PMDK-style durable
transactions — nothing is promised durable until the flush returns.

Data file layout (little endian)::

    header page (4096 bytes):
      magic "TERPDUR1" | u16 version | u16 pmo_id | u32 mode
      u64 size_bytes | u64 log_size | u16 name_len | u16 owner_len
      name utf-8 | owner utf-8
    page slot i at 4096 + i * 4104:
      4096 page bytes | u32 crc32 | u32 marker (0xA110C8ED)

An absent page is an all-zero slot (a filesystem hole): the marker
distinguishes "never written" from "written and must verify".

Journal file layout::

    magic "TERPJRN1" | u64 batch_seq | u32 page_count
    page_count x (u64 page_index | u32 crc32 | 4096 page bytes)
    commit: magic "JRNCMT!!" | u64 batch_seq
"""

from __future__ import annotations

import hashlib
import os
import re
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.pmo.pmo import Pmo

from repro.core.errors import IntegrityError, PmoError, TornPageError
from repro.core.units import PAGE_SIZE
from repro.pmo.pmo import SparseBytes

FILE_MAGIC = b"TERPDUR1"
JOURNAL_MAGIC = b"TERPJRN1"
JOURNAL_COMMIT = b"JRNCMT!!"
FORMAT_VERSION = 1
#: Marks a page slot as holding flushed (verifiable) bytes.
PAGE_MARKER = 0xA110C8ED

HEADER_SPAN = PAGE_SIZE
TRAILER = struct.Struct("<II")            # crc32, marker
SLOT_SIZE = PAGE_SIZE + TRAILER.size
_HEADER = struct.Struct("<8sHHIQQHH")
_JRN_HEAD = struct.Struct("<8sQI")
_JRN_PAGE = struct.Struct("<QI")
_JRN_COMMIT = struct.Struct("<8sQ")

#: Default bound on pages verified per scrub pass.
SCRUB_PAGES_PER_PASS = 8

#: Group commit window: how long the flusher thread waits for more
#: concurrent flushers to pile onto a batch before fsyncing it.
DEFAULT_COMMIT_INTERVAL_US = 200
#: Upper bound on snapshots folded into one group-commit batch.
DEFAULT_COMMIT_MAX_BATCH = 64


def _page_crc(page: bytes) -> int:
    return zlib.crc32(page) & 0xFFFFFFFF


def _safe_filename(name: str) -> str:
    """A stable, collision-free filename for a PMO name."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", name)[:64]
    digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:10]
    return f"{safe}-{digest}"


class DurablePages(SparseBytes):
    """Sparse page storage that remembers which pages are dirty.

    Drop-in for :class:`SparseBytes` (the ``Pmo``, ``RedoLog``, and
    ``HeapAllocator`` all keep working unchanged); every write marks
    the touched page indices so :meth:`PmoStore.flush` knows exactly
    what to persist.
    """

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self.dirty: Set[int] = set()

    def write(self, offset: int, data: bytes) -> None:
        super().write(offset, data)
        first = offset // PAGE_SIZE
        last = (offset + max(0, len(data) - 1)) // PAGE_SIZE
        self.dirty.update(range(first, last + 1))


class _StoreEntry:
    """One registered PMO's durable state."""

    __slots__ = ("pmo", "path", "journal_path", "flush_seq",
                 "scrub_cursor")

    def __init__(self, pmo: "Pmo", path: Path,
                 journal_path: Path) -> None:
        self.pmo = pmo
        self.path = path
        self.journal_path = journal_path
        self.flush_seq = 0
        self.scrub_cursor = 0


class CommitTicket:
    """A parked flusher's handle on an in-flight group commit.

    ``psync`` snapshots its dirty pages, enqueues them, and parks on
    the ticket; the committer's leader thread retires it once the
    whole batch is journaled, home, and fsynced.  ``wait`` returns the
    snapshot's page count or re-raises the batch's failure.
    """

    __slots__ = ("_done", "pages", "error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self.pages = 0
        self.error: Optional[BaseException] = None

    def complete(self, pages: int) -> None:
        self.pages = pages
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    def wait(self, timeout: Optional[float] = 60.0) -> int:
        if not self._done.wait(timeout):
            raise PmoError("group commit ticket timed out")
        if self.error is not None:
            raise self.error
        return self.pages

    @property
    def done(self) -> bool:
        return self._done.is_set()


class GroupCommitter:
    """One leader thread fsyncs many concurrent flushers' batches.

    Concurrent ``psync`` callers snapshot their dirty pages (cheap,
    under the metadata lock) and park on a :class:`CommitTicket`; the
    dedicated flusher thread gathers every snapshot that arrives
    within the commit window (``interval_us``, bounded by
    ``max_batch``), merges same-PMO snapshots in submit order, and
    commits each PMO's merged batch through the unchanged
    journal-before-home protocol — so N concurrent psyncs cost one
    journal fsync + one home fsync per PMO instead of N of each.

    Crash semantics are those of the underlying
    :meth:`PmoStore._commit_entry`: a ticket only retires after its
    batch's journal *and* home slots are durable, so anything a
    returned ``psync`` promised is recoverable; a crash mid-batch
    leaves either an unapplied journal or a committed journal that
    recovery replays.
    """

    def __init__(self, store: "PmoStore", *,
                 interval_us: int = DEFAULT_COMMIT_INTERVAL_US,
                 max_batch: int = DEFAULT_COMMIT_MAX_BATCH) -> None:
        self._store = store
        self.interval_s = max(0, interval_us) / 1e6
        self.max_batch = max(1, max_batch)
        self._cond = threading.Condition()
        self._queue: List[Tuple["_StoreEntry",
                                List[Tuple[int, bytes]],
                                CommitTicket]] = []
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        self._aborted = False
        #: observability: batches committed / snapshots submitted.
        self.batches = 0
        self.submitted = 0

    def submit(self, entry: "_StoreEntry",
               pages: List[Tuple[int, bytes]]) -> CommitTicket:
        ticket = CommitTicket()
        with self._cond:
            if self._aborted or self._stopping:
                ticket.fail(PmoError("group committer is stopped"))
                return ticket
            self._queue.append((entry, pages, ticket))
            self.submitted += 1
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="terp-group-commit",
                    daemon=True)
                self._thread.start()
            self._cond.notify()
        return ticket

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue:
                    if self._stopping:
                        return
                    self._cond.wait()
                if self.interval_s > 0 and not self._stopping and \
                        len(self._queue) < self.max_batch:
                    # The commit window: let concurrent flushers pile
                    # on before the leader pays the fsyncs.
                    self._cond.wait(self.interval_s)
                batch = self._queue[:self.max_batch]
                del self._queue[:len(batch)]
            if batch:
                self._commit_batch(batch)

    def _commit_batch(self, batch: List[Tuple["_StoreEntry",
                                              List[Tuple[int, bytes]],
                                              CommitTicket]]) -> None:
        self.batches += 1
        faults = self._store.faults
        if faults is not None:
            rule = faults.fire("store.commit_stall")
            if rule is not None and rule.delay_ns > 0:
                # The flusher stalls with snapshots staged: widens the
                # mid-group-commit window chaos kills land in, and
                # forces concurrent psyncs to merge deterministically.
                time.sleep(rule.delay_ns / 1e9)
        # Merge same-PMO snapshots in submit order: later snapshots of
        # a page supersede earlier ones within the combined journal.
        groups: Dict[int, Tuple["_StoreEntry", Dict[int, bytes],
                                List[Tuple[CommitTicket, int]]]] = {}
        for entry, pages, ticket in batch:
            key = id(entry)
            group = groups.get(key)
            if group is None:
                groups[key] = (entry, dict(pages),
                               [(ticket, len(pages))])
            else:
                group[1].update(pages)
                group[2].append((ticket, len(pages)))
        for entry, merged, tickets in groups.values():
            pages = sorted(merged.items())
            try:
                self._store._commit_entry(entry, pages)
            except BaseException as exc:
                for ticket, _ in tickets:
                    ticket.fail(exc)
            else:
                shipper = self._store.shipper
                if shipper is not None:
                    # Post-fsync ship hook: the batch is locally
                    # durable; hand it to the replication shipper
                    # *before* the tickets retire, so a psync the
                    # client sees acked is also applied (and acked) by
                    # a connected standby — the zero-acknowledged-
                    # write-loss half of invariant I7.  The shipper
                    # never raises: a dead or absent standby degrades
                    # replication, never local durability.
                    shipper.ship_commit(entry.pmo.name,
                                        entry.pmo.pmo_id,
                                        entry.flush_seq, pages)
                for ticket, count in tickets:
                    ticket.complete(count)

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: by default every queued snapshot still
        commits before the flusher exits."""
        with self._cond:
            self._stopping = True
            if not drain:
                for _, _, ticket in self._queue:
                    ticket.fail(PmoError("group committer stopped "
                                         "before the commit"))
                self._queue.clear()
            self._cond.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(10.0)

    def abort(self) -> None:
        """Crash-path shutdown (the in-process SIGKILL): queued
        snapshots are dropped un-flushed — their psyncs never
        returned, so nothing durable was promised — and the flusher
        is joined so it cannot race a restarted service's recovery of
        the same pool directory."""
        with self._cond:
            self._aborted = True
            self._stopping = True
            for _, _, ticket in self._queue:
                ticket.fail(PmoError("daemon crashed before the "
                                     "commit"))
            self._queue.clear()
            self._cond.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(10.0)


class LoadReport:
    """What a pool-directory rescan found."""

    def __init__(self) -> None:
        self.loaded: List["Pmo"] = []
        self.quarantined: List[Tuple[str, str]] = []
        self.denied: List[Tuple[str, str]] = []
        self.pages_repaired = 0
        self.journals_applied = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "loaded": [p.name for p in self.loaded],
            "quarantined": list(self.quarantined),
            "denied": list(self.denied),
            "pages_repaired": self.pages_repaired,
            "journals_applied": self.journals_applied,
        }


class PmoStore:
    """The pool directory: one durable file (+ journal) per PMO."""

    def __init__(self, root: os.PathLike, *,
                 faults: Optional["FaultPlan"] = None,
                 fsync: bool = True,
                 commit_interval_us: int = DEFAULT_COMMIT_INTERVAL_US,
                 commit_max_batch: int = DEFAULT_COMMIT_MAX_BATCH) \
            -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: optional fault plan; sites ``store.torn_page`` (a home-slot
        #: write is torn mid-page, journal left in place) and
        #: ``store.bit_rot`` (a flushed page is corrupted at rest,
        #: journal already retired — unrepairable by design).
        self.faults = faults
        self.fsync = fsync
        self._entries: Dict[str, _StoreEntry] = {}
        self._scrub_order: List[str] = []
        self._scrub_next = 0
        #: metadata lock: entries, dirty sets, flush_seq, scrub state.
        self._lock = threading.RLock()
        #: file-I/O lock: journal/home/scrub writes serialize on this,
        #: never on ``_lock`` — snapshots on the serving thread stay
        #: cheap while the flusher thread holds fsyncs.  Ordering is
        #: always ``_lock`` before ``_io_lock``; the flusher takes
        #: only ``_io_lock``.
        self._io_lock = threading.Lock()
        #: optional :class:`repro.replication.shipper.JournalShipper`:
        #: when set, every committed group-commit batch (and every
        #: register/destroy) is handed to it post-fsync.
        self.shipper: Optional[Any] = None
        self.committer = GroupCommitter(
            self, interval_us=commit_interval_us,
            max_batch=commit_max_batch)

    def close(self) -> None:
        """Drain and stop the group committer (graceful shutdown)."""
        self.committer.stop(drain=True)

    def abort_commits(self) -> None:
        """Kill the group committer without flushing (crash path)."""
        self.committer.abort()

    # -- registration ------------------------------------------------------

    def make_storage(self, name: str, size: int) -> DurablePages:
        """Storage factory handed to :class:`~repro.pmo.pool.PmoManager`."""
        return DurablePages(size)

    def path_for(self, name: str) -> Path:
        return self.root / f"{_safe_filename(name)}.pmo"

    def journal_path_for(self, name: str) -> Path:
        return self.root / f"{_safe_filename(name)}.journal"

    def register(self, pmo: "Pmo") -> None:
        """Adopt a PMO into the store; writes its header immediately
        so the PMO is discoverable by recovery even before the first
        ``psync``."""
        if not isinstance(pmo.storage, DurablePages):
            raise PmoError(
                f"PMO {pmo.name!r} does not use durable storage")
        with self._lock:
            if pmo.name in self._entries:
                return
            entry = _StoreEntry(pmo, self.path_for(pmo.name),
                                self.journal_path_for(pmo.name))
            self._entries[pmo.name] = entry
            self._scrub_order.append(pmo.name)
            if not entry.path.exists():
                with self._io_lock, open(entry.path, "wb") as fh:
                    fh.write(self._header_bytes(pmo))
                    if self.fsync:
                        fh.flush()
                        os.fsync(fh.fileno())
        # Shipper hook OUTSIDE ``_lock``: the shipper's reconnect
        # bootstrap holds its send lock while reading
        # ``committed_state()`` (which takes ``_lock``), so calling
        # into the shipper under ``_lock`` would be an ABBA deadlock.
        # The lock order is: shipper send lock before store locks,
        # never the reverse.
        if self.shipper is not None:
            self.shipper.ship_header(pmo.name, self._header_bytes(pmo))

    def unregister(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)
            if name in self._scrub_order:
                self._scrub_order.remove(name)
                self._scrub_next = 0

    def destroy(self, name: str) -> None:
        """Remove a PMO's durable files (``PMO_destroy``)."""
        with self._lock:
            self.unregister(name)
            with self._io_lock:
                self.path_for(name).unlink(missing_ok=True)
                self.journal_path_for(name).unlink(missing_ok=True)
        # Outside ``_lock`` for the same lock-order reason as the
        # register hook.  A destroy the link was down for is healed by
        # the reconciling bootstrap on reconnect.
        if self.shipper is not None:
            self.shipper.ship_destroy(name)

    def registered(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def _header_bytes(self, pmo: "Pmo") -> bytes:
        name = pmo.name.encode("utf-8")
        owner = pmo.owner.encode("utf-8")
        head = _HEADER.pack(FILE_MAGIC, FORMAT_VERSION, pmo.pmo_id,
                            pmo.mode, pmo.size_bytes, pmo._log_size,
                            len(name), len(owner)) + name + owner
        if len(head) > HEADER_SPAN:
            raise PmoError(f"PMO name/owner too long for the durable "
                           f"header ({len(head)} bytes)")
        return head.ljust(HEADER_SPAN, b"\x00")

    # -- flush (the durability point) --------------------------------------

    def _snapshot(self, pmo: "Pmo") -> Optional[
            Tuple[_StoreEntry, List[Tuple[int, bytes]]]]:
        """Stage a flush: copy the dirty pages and claim a flush_seq.

        Metadata-lock only — no file I/O — so the serving thread pays
        microseconds here while the fsyncs happen on the committer's
        thread.  The dirty set clears at snapshot time: pages written
        *after* the snapshot re-dirty and belong to the next flush.
        """
        with self._lock:
            entry = self._entries.get(pmo.name)
            if entry is None:
                raise PmoError(f"PMO {pmo.name!r} is not registered "
                               "with the durable store")
            storage = pmo.storage
            assert isinstance(storage, DurablePages)
            if not storage.dirty:
                return None
            dirty = sorted(storage.dirty)
            entry.flush_seq += 1
            resident = storage._pages
            blank = b"\x00" * PAGE_SIZE
            pages = [(index, bytes(resident.get(index, blank)))
                     for index in dirty]
            storage.dirty.clear()
            return entry, pages

    def _commit_entry(self, entry: _StoreEntry,
                      pages: List[Tuple[int, bytes]]) -> None:
        """Make one PMO's page batch durable: journal-before-home.

        Double-write protocol, unchanged from the per-psync era:
        journal first (fsync), then home slots (fsync), then retire
        the journal.  A crash between the two fsyncs leaves a complete
        journal from which every home page is repairable.  Holds only
        the I/O lock — the metadata lock stays free for snapshots.
        """
        with self._io_lock:
            pending = self._journal_pages(entry.journal_path)
            if pending:
                # A journal survives a flush only when a home write was
                # torn: apply it before this batch's journal replaces
                # it, or the torn page would lose its repair source.
                self._apply_pages(entry.path, pending)
                entry.journal_path.unlink(missing_ok=True)
            self._write_journal(entry, pages)
            torn_pages, rot_pages = self._write_home(entry, pages)
            if not torn_pages:
                # The batch is fully home: retire the journal.  A torn
                # write (injected or real) keeps it — that journal is
                # the repair source scrub and recovery rely on.
                entry.journal_path.unlink(missing_ok=True)
            if rot_pages:
                self._inject_bit_rot(entry, rot_pages)

    def flush(self, pmo: "Pmo") -> int:
        """Persist the PMO's dirty pages; returns pages flushed.

        Zero dirty pages is the guaranteed fast path: no journal read,
        no file open, no I/O lock — ``psync`` on a clean PMO costs a
        dict lookup.  Otherwise the snapshot rides the group committer
        so concurrent flushers share fsyncs; this call parks until its
        ticket retires (the durability promise is unchanged).
        """
        ticket = self.flush_async(pmo)
        if ticket is None:
            return 0
        return ticket.wait()

    def flush_async(self, pmo: "Pmo") -> Optional[CommitTicket]:
        """Snapshot + enqueue on the group committer, without waiting.

        Returns ``None`` when the PMO has no dirty pages (the zero-I/O
        fast path); otherwise a :class:`CommitTicket` whose ``wait()``
        returns the page count once the batch is durable.
        """
        snap = self._snapshot(pmo)
        if snap is None:
            return None
        entry, pages = snap
        return self.committer.submit(entry, pages)

    def _write_journal(self, entry: _StoreEntry,
                       pages: List[Tuple[int, bytes]]) -> None:
        # Single joined write: the journal blob is assembled in memory
        # (headers pre-packed per page) and hits the file in one
        # syscall before the one fsync.
        crc32 = zlib.crc32
        jrn_page = _JRN_PAGE.pack
        parts = [_JRN_HEAD.pack(JOURNAL_MAGIC, entry.flush_seq,
                                len(pages))]
        for index, page in pages:
            parts.append(jrn_page(index, crc32(page) & 0xFFFFFFFF))
            parts.append(page)
        parts.append(_JRN_COMMIT.pack(JOURNAL_COMMIT, entry.flush_seq))
        with open(entry.journal_path, "wb") as fh:
            fh.write(b"".join(parts))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def _write_home(self, entry: _StoreEntry,
                    pages: List[Tuple[int, bytes]]
                    ) -> Tuple[List[int], List[int]]:
        """Write page slots; returns (torn, rotted) injected indices."""
        torn: List[int] = []
        rot: List[int] = []
        faults = self.faults
        crc32 = zlib.crc32
        trailer_pack = TRAILER.pack
        with open(entry.path, "r+b") as fh:
            seek = fh.seek
            write = fh.write
            for index, page in pages:
                trailer = trailer_pack(crc32(page) & 0xFFFFFFFF,
                                       PAGE_MARKER)
                seek(HEADER_SPAN + index * SLOT_SIZE)
                if faults is not None and \
                        faults.fire("store.torn_page") is not None:
                    # Torn mid-page: half the new bytes land, the
                    # trailer claims the full new CRC — exactly what a
                    # crash between the two media writes leaves.
                    write(page[:PAGE_SIZE // 2])
                    seek(HEADER_SPAN + index * SLOT_SIZE + PAGE_SIZE)
                    write(trailer)
                    torn.append(index)
                    continue
                # Page + trailer as one slab write, not two.
                write(page + trailer)
                if faults is not None and \
                        faults.fire("store.bit_rot") is not None:
                    rot.append(index)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        return torn, rot

    def _apply_pages(self, path: Path,
                     pages: Dict[int, bytes]) -> None:
        """Write journal page copies to their home slots (fsynced)."""
        with open(path, "r+b") as fh:
            for index, page in sorted(pages.items()):
                fh.seek(HEADER_SPAN + index * SLOT_SIZE)
                fh.write(page)
                fh.write(TRAILER.pack(_page_crc(page), PAGE_MARKER))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def _inject_bit_rot(self, entry: _StoreEntry,
                        indices: List[int]) -> None:
        """Flip one bit in each page *after* the journal retired —
        at-rest decay with no repair source, the quarantine case."""
        with open(entry.path, "r+b") as fh:
            for index in indices:
                pos = HEADER_SPAN + index * SLOT_SIZE
                fh.seek(pos)
                byte = fh.read(1)
                fh.seek(pos)
                fh.write(bytes([byte[0] ^ 0x01]))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    # -- verification / scrub ----------------------------------------------

    def _read_slot(self, fh, index: int) -> Tuple[bytes, int, int]:
        fh.seek(HEADER_SPAN + index * SLOT_SIZE)
        blob = fh.read(SLOT_SIZE)
        blob = blob.ljust(SLOT_SIZE, b"\x00")
        page = blob[:PAGE_SIZE]
        crc, marker = TRAILER.unpack_from(blob, PAGE_SIZE)
        return page, crc, marker

    def _journal_pages(self, journal_path: Path
                       ) -> Optional[Dict[int, bytes]]:
        """The journal's page copies, or None if absent/uncommitted."""
        try:
            raw = journal_path.read_bytes()
        except FileNotFoundError:
            return None
        if len(raw) < _JRN_HEAD.size + _JRN_COMMIT.size:
            return None
        magic, seq, count = _JRN_HEAD.unpack_from(raw, 0)
        if magic != JOURNAL_MAGIC:
            return None
        body = _JRN_HEAD.size + count * (_JRN_PAGE.size + PAGE_SIZE)
        if len(raw) < body + _JRN_COMMIT.size:
            return None            # torn journal: never applied
        commit_magic, commit_seq = _JRN_COMMIT.unpack_from(raw, body)
        if commit_magic != JOURNAL_COMMIT or commit_seq != seq:
            return None
        pages: Dict[int, bytes] = {}
        pos = _JRN_HEAD.size
        for _ in range(count):
            index, crc = _JRN_PAGE.unpack_from(raw, pos)
            pos += _JRN_PAGE.size
            page = raw[pos:pos + PAGE_SIZE]
            pos += PAGE_SIZE
            if _page_crc(page) != crc:
                return None        # journal itself corrupt: unusable
            pages[index] = page
        return pages

    def verify_page(self, name: str, index: int, *,
                    repair: bool = True) -> str:
        """Verify one on-disk page; returns ``ok``/``absent``/
        ``repaired``/``repaired-from-memory``.

        Raises :class:`TornPageError` (journal copy exists) or
        :class:`IntegrityError` (no repair source) when ``repair`` is
        off, quarantines the PMO when repair is impossible.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise PmoError(f"PMO {name!r} is not registered")
            # The whole read-check-repair sequence holds the I/O lock
            # so it cannot interleave with a group-commit batch
            # rewriting the same slots.
            with self._io_lock:
                with open(entry.path, "rb") as fh:
                    page, crc, marker = self._read_slot(fh, index)
                if marker != PAGE_MARKER:
                    return "absent"
                if _page_crc(page) == crc:
                    return "ok"
                journal = self._journal_pages(entry.journal_path)
                good = journal.get(index) if journal else None
                if good is None:
                    resident = entry.pmo.storage._pages.get(index)
                    if not repair or resident is None:
                        entry.pmo.quarantine(
                            f"page {index} failed CRC with no journal "
                            "copy")
                        raise IntegrityError(
                            f"PMO {name!r} page {index}: CRC mismatch, "
                            "no repair source (bit rot)", pmo=name,
                            page_index=index)
                    good = bytes(resident)
                    outcome = "repaired-from-memory"
                else:
                    if not repair:
                        raise TornPageError(
                            f"PMO {name!r} page {index}: CRC mismatch, "
                            "journal copy available", pmo=name,
                            page_index=index)
                    outcome = "repaired"
                with open(entry.path, "r+b") as fh:
                    fh.seek(HEADER_SPAN + index * SLOT_SIZE)
                    fh.write(good + TRAILER.pack(_page_crc(good),
                                                 PAGE_MARKER))
                    fh.flush()
                    if self.fsync:
                        os.fsync(fh.fileno())
                return outcome

    def present_pages(self, name: str) -> List[int]:
        """Indices of flushed (marker-bearing) pages on disk."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise PmoError(f"PMO {name!r} is not registered")
            # One read + a memoryview trailer scan, not a seek/read
            # pair per slot.
            with self._io_lock:
                raw = entry.path.read_bytes()
            count = max(0, (len(raw) - HEADER_SPAN) + SLOT_SIZE - 1) \
                // SLOT_SIZE
            view = memoryview(raw)
            present = []
            unpack_from = TRAILER.unpack_from
            for index in range(count):
                tail = HEADER_SPAN + index * SLOT_SIZE + PAGE_SIZE
                if tail + TRAILER.size <= len(raw):
                    _, marker = unpack_from(view, tail)
                elif tail < len(raw):
                    _, marker = TRAILER.unpack(
                        bytes(view[tail:]).ljust(TRAILER.size, b"\x00"))
                else:
                    marker = 0
                if marker == PAGE_MARKER:
                    present.append(index)
            return present

    def committed_state(self, name: str
                        ) -> Tuple[bytes, int, List[Tuple[int, bytes]]]:
        """One PMO's durable state: ``(header, flush_seq, pages)``.

        Reads the *on-media* bytes (home slots overlaid with any
        retained journal batch), never the resident copy — exactly
        what a crash right now would recover, which is exactly what a
        replication bootstrap must ship.  Pages whose marker is absent
        or whose CRC fails are skipped (scrub owns those).
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise PmoError(f"PMO {name!r} is not registered")
            flush_seq = entry.flush_seq
            with self._io_lock:
                raw = entry.path.read_bytes()
                journal = self._journal_pages(entry.journal_path)
        header = bytes(raw[:HEADER_SPAN]).ljust(HEADER_SPAN, b"\x00")
        count = max(0, (len(raw) - HEADER_SPAN) + SLOT_SIZE - 1) \
            // SLOT_SIZE
        view = memoryview(raw)
        pages: Dict[int, bytes] = {}
        for index in range(count):
            base = HEADER_SPAN + index * SLOT_SIZE
            tail = base + PAGE_SIZE
            if tail + TRAILER.size > len(raw):
                continue
            crc, marker = TRAILER.unpack_from(view, tail)
            if marker != PAGE_MARKER:
                continue
            page = bytes(view[base:tail])
            if _page_crc(page) != crc:
                continue
            pages[index] = page
        if journal:
            pages.update(journal)
        return header, flush_seq, sorted(pages.items())

    def scrub(self, max_pages: int = SCRUB_PAGES_PER_PASS
              ) -> Dict[str, int]:
        """Verify up to ``max_pages`` at-rest pages, round-robin over
        every registered PMO; repairs from the journal (or, for a live
        PMO, from its resident copy).  Returns outcome counts."""
        result = {"verified": 0, "repaired": 0, "quarantined": 0}
        with self._lock:
            if not self._scrub_order:
                return result
            budget = max_pages
            rounds = 0
            while budget > 0 and rounds < len(self._scrub_order):
                name = self._scrub_order[
                    self._scrub_next % len(self._scrub_order)]
                self._scrub_next += 1
                rounds += 1
                entry = self._entries.get(name)
                if entry is None or entry.pmo.quarantined:
                    continue
                pages = self.present_pages(name)
                if not pages:
                    continue
                rounds = 0           # found work: keep going
                start = entry.scrub_cursor % len(pages)
                take = pages[start:start + budget]
                entry.scrub_cursor = start + len(take)
                if entry.scrub_cursor >= len(pages):
                    entry.scrub_cursor = 0
                for index in take:
                    try:
                        outcome = self.verify_page(name, index)
                    except IntegrityError:
                        result["quarantined"] += 1
                        break
                    result["verified"] += 1
                    if outcome.startswith("repaired"):
                        result["repaired"] += 1
                budget -= len(take)
        return result

    # -- recovery (pool rescan) --------------------------------------------

    def load_all(self) -> LoadReport:
        """Rescan the pool directory: apply journals, verify pages,
        rebuild every PMO through full crash recovery, quarantine what
        cannot be proven intact."""
        from repro.pmo.pmo import Pmo
        report = LoadReport()
        for path in sorted(self.root.glob("*.pmo")):
            journal_path = path.with_suffix(".journal")
            try:
                pmo, repaired, applied = self._load_one(path,
                                                        journal_path)
            except IntegrityError as exc:
                # Page-level rot inside a parseable file: the PMO
                # comes back quarantined (read-only) via _load_one's
                # second return path — reaching here means the file
                # was too damaged to even construct; deny it.
                report.denied.append((path.name, str(exc)))
                continue
            except PmoError as exc:
                report.denied.append((path.name, str(exc)))
                continue
            report.pages_repaired += repaired
            report.journals_applied += applied
            if pmo.quarantined:
                report.quarantined.append((pmo.name,
                                           pmo.quarantine_reason))
            report.loaded.append(pmo)
            with self._lock:
                entry = _StoreEntry(pmo, path, journal_path)
                self._entries[pmo.name] = entry
                self._scrub_order.append(pmo.name)
        return report

    def _load_one(self, path: Path, journal_path: Path
                  ) -> Tuple["Pmo", int, int]:
        from repro.pmo.pmo import Pmo
        # One read of the whole file; every page/trailer below is a
        # memoryview slice of it, CRC'd in place — recovery is a
        # single pass, not a seek/read pair per slot.
        raw = path.read_bytes()
        raw_header = raw[:HEADER_SPAN]
        if len(raw_header) < _HEADER.size:
            raise PmoError(f"{path.name}: truncated header")
        magic, version, pmo_id, mode, size_bytes, log_size, \
            name_len, owner_len = _HEADER.unpack_from(raw_header, 0)
        if magic != FILE_MAGIC:
            raise PmoError(f"{path.name}: not a durable PMO file")
        if version != FORMAT_VERSION:
            raise PmoError(f"{path.name}: format version {version} "
                           f"unsupported")
        pos = _HEADER.size
        name = raw_header[pos:pos + name_len].decode("utf-8")
        owner = raw_header[pos + name_len:
                           pos + name_len + owner_len].decode("utf-8")

        journal = self._journal_pages(journal_path)
        applied = 1 if journal else 0
        repaired = 0
        storage = DurablePages(size_bytes)
        bad_pages: List[int] = []
        size = len(raw)
        view = memoryview(raw)
        crc32 = zlib.crc32
        if journal:
            # Double-write recovery: re-apply the whole committed
            # batch.  Idempotent — pages already home verify and
            # are rewritten identically; torn pages are healed.
            parts: List[Tuple[int, bytes]] = sorted(journal.items())
            with open(path, "r+b") as fh:
                for index, page in parts:
                    base = HEADER_SPAN + index * SLOT_SIZE
                    tail = base + PAGE_SIZE
                    old_ok = False
                    if tail + TRAILER.size <= size:
                        old_crc, old_marker = TRAILER.unpack_from(
                            view, tail)
                        old_page = view[base:tail]
                        old_ok = old_marker == PAGE_MARKER and \
                            crc32(old_page) & 0xFFFFFFFF == old_crc \
                            and old_page == page
                    if not old_ok:
                        repaired += 1
                    fh.seek(base)
                    fh.write(page + TRAILER.pack(_page_crc(page),
                                                 PAGE_MARKER))
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
        count = max(0, (size - HEADER_SPAN) + SLOT_SIZE - 1) \
            // SLOT_SIZE
        if journal:
            count = max(count, max(journal) + 1)
        for index in range(count):
            if journal is not None and index in journal:
                # Just re-applied from the journal: home and valid
                # by construction.
                storage._pages[index] = bytearray(journal[index])
                continue
            base = HEADER_SPAN + index * SLOT_SIZE
            tail = base + PAGE_SIZE
            if tail + TRAILER.size <= size:
                page_bytes: Any = view[base:tail]
                crc, marker = TRAILER.unpack_from(view, tail)
            else:
                blob = bytes(view[base:base + SLOT_SIZE]).ljust(
                    SLOT_SIZE, b"\x00")
                page_bytes = blob[:PAGE_SIZE]
                crc, marker = TRAILER.unpack_from(blob, PAGE_SIZE)
            if marker != PAGE_MARKER:
                continue
            if crc32(page_bytes) & 0xFFFFFFFF != crc:
                bad_pages.append(index)
                continue
            storage._pages[index] = bytearray(page_bytes)
        if journal:
            journal_path.unlink(missing_ok=True)

        if not storage._pages and not bad_pages:
            # Created but never flushed: only the durable header made
            # it to media.  Reconstruct the PMO empty — exactly what a
            # crash before the first psync promises.
            return Pmo(pmo_id, name, size_bytes, owner=owner,
                       mode=mode, log_size=log_size,
                       storage=storage), repaired, applied

        quarantine_reason = ""
        if bad_pages:
            quarantine_reason = (
                f"{len(bad_pages)} page(s) failed CRC with no journal "
                f"copy (bit rot): {bad_pages[:8]}")
        try:
            pmo = Pmo.from_snapshot(pmo_id, name, storage,
                                    log_size=log_size, owner=owner,
                                    mode=mode)
        except PmoError:
            if not quarantine_reason:
                raise
            # Recovery itself failed on rotted bytes: keep the PMO
            # readable-as-is but skip log replay and the allocator.
            pmo = Pmo.quarantined_shell(pmo_id, name, storage,
                                        log_size=log_size, owner=owner,
                                        mode=mode)
        if quarantine_reason:
            pmo.quarantine(quarantine_reason)
        return pmo, repaired, applied
