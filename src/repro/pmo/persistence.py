"""Crash consistency for PMOs: a redo (write-ahead) log.

A PMO "requires ... crash consistency: a PMO remains in a consistent
state even upon software crashes or system power failures"
(Section II).  This module supplies that property with a classic redo
log living inside the PMO's reserved log region:

* ``begin`` opens a transaction;
* ``log_write`` captures (offset, new bytes) pairs — the home
  locations are *not* touched yet;
* ``commit`` appends a commit record and only then applies the logged
  writes to their home locations;
* on recovery, committed-but-unapplied transactions are replayed and
  uncommitted ones discarded.

The log is genuinely serialized into the PMO's bytes, so a simulated
crash (dropping all volatile state) followed by :func:`recover`
exercises the same byte-level path a real PM library would.

Record format (little endian)::

    WRITE record:  u8 tag=1 | u64 tx_id | u64 offset | u32 len | bytes
    COMMIT record: u8 tag=2 | u64 tx_id
    APPLIED mark:  u8 tag=3 | u64 tx_id
    end of log:    u8 tag=0
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import CrashConsistencyError

TAG_END = 0
TAG_WRITE = 1
TAG_COMMIT = 2
TAG_APPLIED = 3

_WRITE_HDR = struct.Struct("<BQQI")
_TX_HDR = struct.Struct("<BQ")


class RedoLog:
    """Write-ahead redo log over a byte region of a PMO.

    ``memory`` must expose ``read(offset, n)`` and ``write(offset,
    data)`` raw byte access (the PMO storage object does).
    """

    def __init__(self, memory, base: int, size: int, *,
                 recover: bool = False) -> None:
        self.memory = memory
        self.base = base
        self.size = size
        self._tail = 0           # append position within the region
        self._next_tx = 1
        self._open_tx: Optional[int] = None
        self._pending: List[Tuple[int, bytes]] = []
        if recover:
            self._recover()
        else:
            self._write_end_marker()

    # -- transaction API -----------------------------------------------------

    def begin(self) -> int:
        if self._open_tx is not None:
            raise CrashConsistencyError("nested transactions not supported")
        self._open_tx = self._next_tx
        self._next_tx += 1
        self._pending = []
        return self._open_tx

    def log_write(self, offset: int, data: bytes) -> None:
        if self._open_tx is None:
            raise CrashConsistencyError("log_write outside a transaction")
        record = _WRITE_HDR.pack(TAG_WRITE, self._open_tx, offset,
                                 len(data)) + data
        self._append(record)
        self._pending.append((offset, bytes(data)))

    def commit(self) -> None:
        """Seal the transaction, then apply writes to home locations."""
        if self._open_tx is None:
            raise CrashConsistencyError("commit outside a transaction")
        tx = self._open_tx
        self._append(_TX_HDR.pack(TAG_COMMIT, tx))
        # The commit record is durable; now apply to home locations.
        for offset, data in self._pending:
            self.memory.write(offset, data)
        self._append(_TX_HDR.pack(TAG_APPLIED, tx))
        self._open_tx = None
        self._pending = []
        self._maybe_checkpoint()

    def abort(self) -> None:
        if self._open_tx is None:
            raise CrashConsistencyError("abort outside a transaction")
        # Nothing was applied; simply forget.  The log entries remain
        # but carry no commit record so recovery ignores them.
        self._open_tx = None
        self._pending = []

    @property
    def in_transaction(self) -> bool:
        return self._open_tx is not None

    @property
    def pending_writes(self) -> List[Tuple[int, bytes]]:
        """The open transaction's not-yet-applied writes (oldest first)."""
        return self._pending

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Replay committed-but-unapplied transactions; drop the rest."""
        records = self._scan()
        committed = {tx for tag, tx, _ in records if tag == TAG_COMMIT}
        applied = {tx for tag, tx, _ in records if tag == TAG_APPLIED}
        replay = committed - applied
        max_tx = 0
        for tag, tx, payload in records:
            max_tx = max(max_tx, tx)
            if tag == TAG_WRITE and tx in replay:
                offset, data = payload
                self.memory.write(offset, data)
        for tx in sorted(replay):
            self._append(_TX_HDR.pack(TAG_APPLIED, tx))
        self._next_tx = max_tx + 1
        self._open_tx = None
        self._pending = []
        self._maybe_checkpoint()

    def _scan(self) -> List[Tuple[int, int, object]]:
        """Parse the log region into (tag, tx_id, payload) records."""
        records = []
        pos = 0
        while pos < self.size:
            tag = self.memory.read(self.base + pos, 1)[0]
            if tag == TAG_END:
                break
            if tag == TAG_WRITE:
                if pos + _WRITE_HDR.size > self.size:
                    break  # torn record at crash: ignore the tail
                _, tx, offset, length = _WRITE_HDR.unpack(
                    self.memory.read(self.base + pos, _WRITE_HDR.size))
                data_pos = pos + _WRITE_HDR.size
                if data_pos + length > self.size:
                    break
                data = self.memory.read(self.base + data_pos, length)
                records.append((TAG_WRITE, tx, (offset, bytes(data))))
                pos = data_pos + length
            elif tag in (TAG_COMMIT, TAG_APPLIED):
                if pos + _TX_HDR.size > self.size:
                    break
                _, tx = _TX_HDR.unpack(
                    self.memory.read(self.base + pos, _TX_HDR.size))
                records.append((tag, tx, None))
                pos += _TX_HDR.size
            else:
                # An unknown tag byte is a record header torn by a
                # crash mid-write (e.g. a commit record whose tag byte
                # never fully landed).  The tail from here on was
                # never sealed — any transaction it belonged to lacks
                # a commit record and is discarded, exactly like an
                # explicit TAG_END cut.
                break
        self._tail = pos
        return records

    # -- internals ------------------------------------------------------------

    def _append(self, record: bytes) -> None:
        if self._tail + len(record) + 1 > self.size:
            self._checkpoint()
            if self._tail + len(record) + 1 > self.size:
                raise CrashConsistencyError("redo log full")
        self.memory.write(self.base + self._tail, record)
        self._tail += len(record)
        self._write_end_marker()

    def _write_end_marker(self) -> None:
        self.memory.write(self.base + self._tail, bytes([TAG_END]))

    def _maybe_checkpoint(self) -> None:
        if self._tail > self.size // 2:
            self._checkpoint()

    def _checkpoint(self) -> None:
        """Truncate the log: all applied transactions can be dropped.

        Only safe when no transaction is open or every open tx's
        records are preserved; with the single-open-tx discipline the
        log can simply restart whenever no tx is open.
        """
        if self._open_tx is not None:
            return
        self._tail = 0
        self._write_end_marker()

    def utilization(self) -> float:
        return self._tail / self.size
