"""Allocation-heavy workloads for the dead-time study (Figure 8).

The paper measures heap-object dead times over eight SPEC 2017
benchmarks and five Heap Layers benchmarks.  Without those binaries,
we reproduce the *pipeline* faithfully: thirteen allocation-driven
workload profiles run real ``pmalloc``/``pfree`` sequences against a
PMO heap, write to their objects on realistic schedules, and the
:class:`~repro.security.dead_time.DeadTimeTracker` measures the gap
between each object's last write and its deallocation.

The lifetime schedules are drawn from per-profile lognormal
distributions whose parameters encode the published observation the
figure exists to support (95% of dead times >= 2µs, with a broad mode
in the tens of microseconds).  Each profile perturbs the base
parameters the way the individual benchmarks in Figure 8 differ from
one another — allocation-churn benchmarks (Heap Layers) skew short,
solver-style benchmarks (SPEC) skew long.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.units import MIB, us
from repro.pmo.pmo import Pmo
from repro.security.dead_time import DeadTimeTracker


@dataclass(frozen=True)
class HeapProfile:
    """One benchmark's allocation behaviour."""

    name: str
    #: lognormal parameters of the dead time, in ln(microseconds)
    dead_mu: float
    dead_sigma: float
    #: object size range (bytes)
    size_range: Tuple[int, int] = (32, 512)
    #: number of writes an object receives while live
    writes_range: Tuple[int, int] = (1, 8)
    #: gap between writes, mean microseconds
    write_gap_us: float = 5.0
    #: live objects kept in flight
    working_set: int = 64


#: Eight SPEC-2017-like profiles + five Heap-Layers-like profiles.
#: SPEC solvers hold objects longer; Heap Layers churn allocators
#: with shorter (but still mostly >2us) dead times.
PROFILES: List[HeapProfile] = [
    HeapProfile("perlbench", dead_mu=np.log(18.0), dead_sigma=1.15),
    HeapProfile("gcc", dead_mu=np.log(25.0), dead_sigma=1.35),
    HeapProfile("mcf", dead_mu=np.log(40.0), dead_sigma=1.2,
                size_range=(64, 2048)),
    HeapProfile("omnetpp", dead_mu=np.log(12.0), dead_sigma=1.25),
    HeapProfile("xalancbmk", dead_mu=np.log(15.0), dead_sigma=1.2),
    HeapProfile("x264", dead_mu=np.log(60.0), dead_sigma=1.1,
                size_range=(256, 4096)),
    HeapProfile("deepsjeng", dead_mu=np.log(30.0), dead_sigma=1.2),
    HeapProfile("leela", dead_mu=np.log(22.0), dead_sigma=1.3),
    HeapProfile("hl-cfrac", dead_mu=np.log(8.0), dead_sigma=1.1,
                working_set=128),
    HeapProfile("hl-espresso", dead_mu=np.log(6.0), dead_sigma=1.0,
                working_set=128),
    HeapProfile("hl-lindsay", dead_mu=np.log(10.0), dead_sigma=1.15),
    HeapProfile("hl-perl", dead_mu=np.log(14.0), dead_sigma=1.25),
    HeapProfile("hl-roboop", dead_mu=np.log(9.0), dead_sigma=1.1),
]


def run_profile(profile: HeapProfile, *, n_objects: int = 2_000,
                seed: int = 42) -> DeadTimeTracker:
    """Execute one profile against a real PMO heap.

    Objects are allocated into a shared PMO, written on their
    schedule, left dead, and freed — with everything interleaved on a
    single simulated clock so allocator state (fragmentation, reuse)
    evolves realistically.
    """
    rng = np.random.default_rng(seed)
    pmo = Pmo(1, f"heap-{profile.name}", 64 * MIB)
    tracker = DeadTimeTracker()
    clock_ns = 0
    #: (free_time_ns, obj_id, oid) of live objects
    live: List[Tuple[int, int, object]] = []
    next_id = 0

    def retire_due(now_ns: int) -> None:
        nonlocal live
        due = [(t, i, o) for (t, i, o) in live if t <= now_ns]
        live = [(t, i, o) for (t, i, o) in live if t > now_ns]
        for t, obj_id, oid in sorted(due):
            tracker.on_free(obj_id, t)
            pmo.pfree(oid)

    while next_id < n_objects:
        # Allocation pacing: keep the working set near the target.
        clock_ns += int(rng.exponential(us(profile.write_gap_us)))
        retire_due(clock_ns)
        if len(live) >= profile.working_set:
            # Jump to the earliest retirement to make room.
            clock_ns = max(clock_ns, min(t for t, _, _ in live))
            retire_due(clock_ns)
            continue
        size = int(rng.integers(*profile.size_range))
        oid = pmo.pmalloc(size)
        obj_id = next_id
        next_id += 1
        tracker.on_alloc(obj_id, clock_ns)
        # Write schedule while live.
        writes = int(rng.integers(*profile.writes_range))
        t = clock_ns
        for _ in range(writes):
            t += int(rng.exponential(us(profile.write_gap_us)))
            pmo.write(oid.offset, b"w" * min(size, 16))
            tracker.on_write(obj_id, t)
        # Dead time from the benchmark's distribution, then free.
        dead_ns = int(us(float(
            np.exp(rng.normal(profile.dead_mu, profile.dead_sigma)))))
        live.append((t + max(1, dead_ns), obj_id, oid))
    # Drain the stragglers.
    if live:
        clock_ns = max(t for t, _, _ in live)
        retire_due(clock_ns)
    return tracker


def all_dead_times_us(*, n_objects_per_profile: int = 1_500,
                      seed: int = 42) -> np.ndarray:
    """Dead times pooled across all thirteen profiles (Figure 8)."""
    samples = []
    for i, profile in enumerate(PROFILES):
        tracker = run_profile(profile,
                              n_objects=n_objects_per_profile,
                              seed=seed + i)
        samples.append(tracker.dead_times_us())
    return np.concatenate(samples)
