"""Evaluation workloads: WHISPER, SPEC-style, and allocation traces."""

from repro.workloads.heaplayers import all_dead_times_us, PROFILES

__all__ = ["all_dead_times_us", "PROFILES"]
