"""SPEC CPU 2017-style workloads: trace generators and real kernels."""

from repro.workloads.spec.base import (
    all_benchmarks, get_benchmark, SPEC_NAMES, SPEC_SPECS,
    SpecBenchmark, SpecSpec)
from repro.workloads.spec.kernels import ALL_KERNELS, make_kernel

__all__ = ["all_benchmarks", "get_benchmark", "SPEC_NAMES",
           "SPEC_SPECS", "SpecBenchmark", "SpecSpec", "ALL_KERNELS",
           "make_kernel"]
