"""SPEC CPU 2017 workload modelling (multi-PMO, staged execution).

The paper runs the C/C++ OpenMP subset of SPEC 2017 with every heap
object larger than 128KB allocated as its own PMO.  The evaluation-
relevant structure is:

* several PMOs per benchmark (Table IV: mcf 4, lbm 2, imagick 3,
  nab 3, xz 6) — but only 1-2 *active* at any time, because programs
  use different PMOs in different computation stages;
* much denser PMO access than WHISPER (most of the working set is in
  PMOs), hence tiny natural windows (MM EW avg 1-10µs) and very high
  insertion frequency — which is what makes TM's overhead explode
  past 300% and MERR's average 156%;
* parallel (OpenMP) loops: N threads iterate the same stages over
  partitioned data, sharing the PMOs.

:class:`SpecBenchmark` generates those streams from a calibrated
:class:`SpecSpec`: stages cycle round-robin over the PMOs with
``actives_per_stage`` of them live at a time; each loop iteration is
one micro-transaction bookended by MERR's manual insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.units import MIB, us
from repro.sim.events import Burst, Compute, RegionEnd, TxBegin, TxEnd


@dataclass(frozen=True)
class SpecSpec:
    """Calibrated shape for one SPEC benchmark.

    ``window_avg_us``/``window_max_us`` — per-iteration PMO window
    (Table IV MM columns).  ``er_within`` — exposure rate of a PMO
    *while its stage runs* (the table's per-PMO ER equals
    ``er_within * actives_per_stage / n_pmos``).  ``region_us`` sets
    the thread-window (TEW) granularity.
    """

    name: str
    n_pmos: int
    actives_per_stage: int
    window_avg_us: float
    window_max_us: float
    er_within: float
    region_us: float
    n_iterations: int = 20_000
    n_stages: int = 8
    pmo_size: int = 64 * MIB
    base_cycles_per_access: float = 8.0
    #: measured/representative burst contents
    accesses_per_region: float = 60.0
    unique_pages: int = 4
    write_fraction: float = 0.4

    @property
    def cycle_us(self) -> float:
        return self.window_avg_us / self.er_within

    def pmo_names(self) -> List[str]:
        return [f"{self.name}-pmo{i}" for i in range(self.n_pmos)]


class SpecBenchmark:
    """Stream generator for one SPEC benchmark."""

    def __init__(self, spec: SpecSpec) -> None:
        self.spec = spec

    def pmo_sizes(self) -> Dict[str, int]:
        return {name: self.spec.pmo_size for name in self.spec.pmo_names()}

    def _stage_pmos(self, stage: int) -> Tuple[str, ...]:
        """The PMOs active in ``stage`` (round-robin windows)."""
        names = self.spec.pmo_names()
        k = self.spec.actives_per_stage
        start = (stage * k) % len(names)
        return tuple(names[(start + i) % len(names)] for i in range(k))

    def thread_stream(self, *, n_iterations: Optional[int] = None,
                      seed: int = 17) -> Iterator:
        spec = self.spec
        rng = np.random.default_rng(seed)
        iters = n_iterations if n_iterations is not None \
            else spec.n_iterations
        region_ns = us(spec.region_us)
        mean_frac = min(0.95, spec.window_avg_us / spec.window_max_us)
        beta_a = 2.0
        beta_b = beta_a * (1.0 - mean_frac) / mean_frac
        outside_mean_ns = us(spec.cycle_us - spec.window_avg_us)
        iters_per_stage = max(1, iters // spec.n_stages)
        done = 0
        stage = 0
        while done < iters:
            pmos = self._stage_pmos(stage)
            for _ in range(min(iters_per_stage, iters - done)):
                window_ns = max(region_ns, int(
                    us(spec.window_max_us) * rng.beta(beta_a, beta_b)))
                yield TxBegin.of(*pmos)
                yield from self._iteration_body(pmos, window_ns,
                                                region_ns, rng)
                yield TxEnd()
                gap = int(rng.gamma(3.0, max(1.0, outside_mean_ns / 3.0)))
                if gap > 0:
                    yield Compute(gap)
                done += 1
            stage += 1

    def _iteration_body(self, pmos: Tuple[str, ...], window_ns: int,
                        region_ns: int,
                        rng: np.random.Generator) -> Iterator:
        spec = self.spec
        n_regions = max(1, int(round(window_ns / (4.0 * region_ns))))
        gap_each = max(0, window_ns - n_regions * region_ns) // n_regions
        for i in range(n_regions):
            # An iteration's region touches each active PMO (e.g. lbm
            # reads the source lattice and writes the destination).
            for pmo in pmos:
                n = max(1, int(rng.poisson(
                    spec.accesses_per_region / len(pmos))))
                yield Burst(pmo, n_accesses=n,
                            unique_pages=spec.unique_pages,
                            write_fraction=spec.write_fraction,
                            base_cycles=spec.base_cycles_per_access)
            yield Compute(region_ns)
            yield RegionEnd()
            # Non-PMO computation fills the rest of the window; the
            # trailing chunk matters too: the operation's (manual)
            # detach comes after it, so the window spans it.
            if gap_each > 0:
                yield Compute(gap_each)

    def threads(self, num_threads: int = 1, *,
                n_iterations: Optional[int] = None,
                seed: int = 17) -> Dict[int, Iterator]:
        total = (n_iterations if n_iterations is not None
                 else self.spec.n_iterations)
        per_thread = max(1, total // num_threads)
        return {tid: self.thread_stream(n_iterations=per_thread,
                                        seed=seed + 1000 * tid)
                for tid in range(num_threads)}


# -- the five benchmarks (calibration from Table IV) -----------------------------

SPEC_SPECS: Dict[str, SpecSpec] = {
    # mcf: min-cost flow; 4 PMOs (nodes, arcs, basket, dual), pricing
    # and flow-update stages touch two at a time.
    "mcf": SpecSpec("mcf", n_pmos=4, actives_per_stage=2,
                    window_avg_us=4.5, window_max_us=25.1,
                    er_within=0.26, region_us=0.7,
                    accesses_per_region=80, write_fraction=0.3),
    # lbm: Lattice-Boltzmann; src/dst lattices both live the whole
    # run — the paper's worst case.
    "lbm": SpecSpec("lbm", n_pmos=2, actives_per_stage=2,
                    window_avg_us=1.1, window_max_us=17.1,
                    er_within=0.496, region_us=0.3,
                    accesses_per_region=100, write_fraction=0.5),
    # imagick: convolution pipeline over image planes.
    "imagick": SpecSpec("imagick", n_pmos=3, actives_per_stage=2,
                        window_avg_us=3.4, window_max_us=28.6,
                        er_within=0.43, region_us=0.6,
                        accesses_per_region=70, write_fraction=0.45),
    # nab: molecular dynamics force loops over coordinate/force arrays.
    "nab": SpecSpec("nab", n_pmos=3, actives_per_stage=2,
                    window_avg_us=2.4, window_max_us=18.9,
                    er_within=0.56, region_us=0.7,
                    accesses_per_region=90, write_fraction=0.5),
    # xz: LZMA; 6 PMOs (dictionary, match finder chains, buffers)
    # used in clearly separated stages -> lowest exposure rate.
    "xz": SpecSpec("xz", n_pmos=6, actives_per_stage=1,
                   window_avg_us=10.4, window_max_us=37.5,
                   er_within=0.49, region_us=1.9,
                   accesses_per_region=60, write_fraction=0.35),
}

SPEC_NAMES = ["mcf", "lbm", "imagick", "nab", "xz"]


def get_benchmark(name: str) -> SpecBenchmark:
    if name not in SPEC_SPECS:
        raise KeyError(f"unknown SPEC benchmark {name!r}; "
                       f"choose from {SPEC_NAMES}")
    return SpecBenchmark(SPEC_SPECS[name])


def all_benchmarks() -> Dict[str, SpecBenchmark]:
    return {name: get_benchmark(name) for name in SPEC_NAMES}
