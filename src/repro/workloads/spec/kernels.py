"""Executable SPEC-style kernels over PMO-backed data.

The trace generators in :mod:`repro.workloads.spec.base` model the
benchmarks' *timing shape*; these kernels are the computational
substance: five small but genuine implementations of each benchmark's
core loop, with all large state held in PMOs (via
:class:`~repro.pmo.array.PmoArray` and friends), so the "heap objects
larger than 128KB become PMOs" story is executable end to end —
including crash/recovery of mid-computation state.

Each kernel implements the same interface::

    kernel.setup(manager)   # create its PMOs
    kernel.step()           # one outer iteration
    kernel.verify()         # a correctness invariant

* ``McfKernel`` — successive-shortest-path min-cost flow
  (Bellman-Ford) on a random network; PMOs: arcs, node potentials,
  distances, flow.
* ``LbmKernel`` — D2Q9 lattice-Boltzmann streaming/collision step;
  PMOs: src and dst lattices (the paper's two hot PMOs).
* ``ImagickKernel`` — normalized 3x3 convolution over an image plane;
  PMOs: source, destination, (tiny) kernel.
* ``NabKernel`` — Lennard-Jones molecular dynamics with velocity
  Verlet; PMOs: positions, velocities, forces.
* ``XzKernel`` — LZ77 greedy compressor with a hash-chain match
  finder; PMOs: input, hash heads, chains, output tokens (plus
  staging buffers) — six PMOs, used in stages, like 657.xz.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import PmoError
from repro.core.units import MIB
from repro.pmo.array import PmoArray
from repro.pmo.pool import PmoManager


class SpecKernel:
    """Common kernel interface."""

    name = "abstract"

    def setup(self, manager: PmoManager) -> None:
        raise NotImplementedError

    def step(self) -> float:
        """One outer iteration; returns a progress metric."""
        raise NotImplementedError

    def verify(self) -> bool:
        raise NotImplementedError

    def pmo_names(self) -> List[str]:
        raise NotImplementedError


class McfKernel(SpecKernel):
    """Min-cost flow by successive shortest paths (429/505.mcf's job).

    A random directed network with capacities and costs; each step
    finds a cheapest augmenting path from source to sink with
    Bellman-Ford over the residual network and pushes flow along it.
    """

    name = "mcf"

    def __init__(self, n_nodes: int = 64, n_arcs: int = 256,
                 seed: int = 3) -> None:
        self.n_nodes = n_nodes
        self.n_arcs = n_arcs
        self.rng = np.random.default_rng(seed)
        self.total_flow = 0.0
        self.total_cost = 0.0

    def setup(self, manager: PmoManager) -> None:
        self._pmo_arcs = manager.create("mcf-arcs", 4 * MIB)
        self._pmo_nodes = manager.create("mcf-nodes", 4 * MIB)
        self._pmo_dist = manager.create("mcf-dist", 4 * MIB)
        self._pmo_flow = manager.create("mcf-flow", 4 * MIB)
        # arcs: (src, dst, capacity, cost) rows
        self.arcs = PmoArray.create(self._pmo_arcs, (self.n_arcs, 4),
                                    dtype=np.float64)
        self.potential = PmoArray.create(self._pmo_nodes,
                                         (self.n_nodes,))
        self.dist = PmoArray.create(self._pmo_dist, (self.n_nodes,))
        self.flow = PmoArray.create(self._pmo_flow, (self.n_arcs,))
        rows = np.zeros((self.n_arcs, 4))
        # A connected backbone plus random arcs.
        for i in range(self.n_arcs):
            if i < self.n_nodes - 1:
                src, dst = i, i + 1
            else:
                src = int(self.rng.integers(0, self.n_nodes - 1))
                dst = int(self.rng.integers(src + 1, self.n_nodes))
            rows[i] = (src, dst, float(self.rng.integers(1, 10)),
                       float(self.rng.integers(1, 20)))
        self.arcs.store_all(rows)

    def pmo_names(self) -> List[str]:
        return ["mcf-arcs", "mcf-nodes", "mcf-dist", "mcf-flow"]

    def step(self) -> float:
        """One augmentation; returns the flow pushed (0 when done)."""
        arcs = self.arcs.load_all()
        flow = self.flow.load()
        inf = np.inf
        dist = np.full(self.n_nodes, inf)
        parent_arc = np.full(self.n_nodes, -1, dtype=int)
        parent_dir = np.zeros(self.n_nodes, dtype=int)
        dist[0] = 0.0
        for _ in range(self.n_nodes - 1):
            changed = False
            for a in range(self.n_arcs):
                src, dst, cap, cost = arcs[a]
                src, dst = int(src), int(dst)
                residual = cap - flow[a]
                if residual > 1e-9 and dist[src] + cost < dist[dst] - 1e-12:
                    dist[dst] = dist[src] + cost
                    parent_arc[dst] = a
                    parent_dir[dst] = +1
                    changed = True
                if flow[a] > 1e-9 and dist[dst] - cost < dist[src] - 1e-12:
                    dist[src] = dist[dst] - cost
                    parent_arc[src] = a
                    parent_dir[src] = -1
                    changed = True
            if not changed:
                break
        sink = self.n_nodes - 1
        self.dist.store(np.where(np.isfinite(dist), dist, 1e18))
        if not np.isfinite(dist[sink]):
            return 0.0
        # Trace the path and find the bottleneck.
        path: List[Tuple[int, int]] = []
        node = sink
        bottleneck = inf
        while node != 0:
            a = parent_arc[node]
            direction = parent_dir[node]
            src, dst, cap, _ = arcs[a]
            if direction > 0:
                bottleneck = min(bottleneck, cap - flow[a])
                node = int(src)
            else:
                bottleneck = min(bottleneck, flow[a])
                node = int(dst)
            path.append((a, direction))
        for a, direction in path:
            flow[a] += direction * bottleneck
        self.flow.store(flow)
        self.potential.store(np.where(np.isfinite(dist), dist, 0.0))
        self.total_flow += bottleneck
        self.total_cost += bottleneck * dist[sink]
        return float(bottleneck)

    def verify(self) -> bool:
        """Capacity constraints and flow conservation at inner nodes."""
        arcs = self.arcs.load_all()
        flow = self.flow.load()
        if np.any(flow < -1e-9) or \
                np.any(flow > arcs[:, 2] + 1e-9):
            return False
        balance = np.zeros(self.n_nodes)
        for a in range(self.n_arcs):
            src, dst = int(arcs[a, 0]), int(arcs[a, 1])
            balance[src] -= flow[a]
            balance[dst] += flow[a]
        inner = balance[1:-1]
        return bool(np.allclose(inner, 0.0, atol=1e-6))


class LbmKernel(SpecKernel):
    """D2Q9 lattice-Boltzmann (519.lbm's core): stream + collide.

    Two full lattices alternate roles each step — the benchmark's two
    永hot PMOs.  Verification: total mass is conserved.
    """

    name = "lbm"

    #: D2Q9 velocity set and weights.
    VELOCITIES = np.array([(0, 0), (1, 0), (0, 1), (-1, 0), (0, -1),
                           (1, 1), (-1, 1), (-1, -1), (1, -1)])
    WEIGHTS = np.array([4 / 9] + [1 / 9] * 4 + [1 / 36] * 4)
    OMEGA = 1.2

    def __init__(self, width: int = 24, height: int = 16,
                 seed: int = 4) -> None:
        self.width = width
        self.height = height
        self.rng = np.random.default_rng(seed)
        self._step_parity = 0

    def setup(self, manager: PmoManager) -> None:
        self._pmo_a = manager.create("lbm-lattice-a", 8 * MIB)
        self._pmo_b = manager.create("lbm-lattice-b", 8 * MIB)
        shape = (self.height * self.width, 9)
        self.lattice_a = PmoArray.create(self._pmo_a, shape)
        self.lattice_b = PmoArray.create(self._pmo_b, shape)
        rho = 1.0 + 0.05 * self.rng.random((self.height, self.width))
        init = (self.WEIGHTS[None, None, :]
                * rho[:, :, None]).reshape(shape)
        self.lattice_a.store_all(init)
        self.lattice_b.store_all(init)

    def pmo_names(self) -> List[str]:
        return ["lbm-lattice-a", "lbm-lattice-b"]

    def _grids(self) -> Tuple[PmoArray, PmoArray]:
        if self._step_parity % 2 == 0:
            return self.lattice_a, self.lattice_b
        return self.lattice_b, self.lattice_a

    def step(self) -> float:
        src_arr, dst_arr = self._grids()
        f = src_arr.load_all().reshape(self.height, self.width, 9)
        rho = f.sum(axis=2)
        ux = (f * self.VELOCITIES[:, 0]).sum(axis=2) / rho
        uy = (f * self.VELOCITIES[:, 1]).sum(axis=2) / rho
        # BGK collision toward equilibrium.
        feq = np.empty_like(f)
        usq = ux * ux + uy * uy
        for i, (cx, cy) in enumerate(self.VELOCITIES):
            cu = cx * ux + cy * uy
            feq[:, :, i] = self.WEIGHTS[i] * rho * (
                1 + 3 * cu + 4.5 * cu * cu - 1.5 * usq)
        f_post = f + self.OMEGA * (feq - f)
        # Streaming with periodic boundaries.
        f_new = np.empty_like(f_post)
        for i, (cx, cy) in enumerate(self.VELOCITIES):
            f_new[:, :, i] = np.roll(
                np.roll(f_post[:, :, i], cy, axis=0), cx, axis=1)
        dst_arr.store_all(
            f_new.reshape(self.height * self.width, 9))
        self._step_parity += 1
        return float(rho.sum())

    def verify(self) -> bool:
        src_arr, _ = self._grids()
        mass = src_arr.load_all().sum()
        expected = self.width * self.height  # rho ~ 1 + small noise
        return bool(abs(mass - expected) / expected < 0.1)


class ImagickKernel(SpecKernel):
    """Normalized 3x3 convolution over an image plane (imagick blur)."""

    name = "imagick"

    def __init__(self, width: int = 64, height: int = 48,
                 seed: int = 5) -> None:
        self.width = width
        self.height = height
        self.rng = np.random.default_rng(seed)
        self._row = 1

    def setup(self, manager: PmoManager) -> None:
        self._pmo_src = manager.create("imagick-src", 8 * MIB)
        self._pmo_dst = manager.create("imagick-dst", 8 * MIB)
        self._pmo_kernel = manager.create("imagick-kernel", 1 * MIB)
        self.src = PmoArray.create(self._pmo_src,
                                   (self.height, self.width))
        self.dst = PmoArray.create(self._pmo_dst,
                                   (self.height, self.width))
        self.kernel = PmoArray.create(self._pmo_kernel, (3, 3))
        image = self.rng.random((self.height, self.width)) * 255.0
        self.src.store_all(image)
        self.dst.store_all(image)
        blur = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]],
                        dtype=float)
        self.kernel.store_all(blur / blur.sum())

    def pmo_names(self) -> List[str]:
        return ["imagick-src", "imagick-dst", "imagick-kernel"]

    def step(self) -> float:
        """Convolve one interior row (tile-at-a-time access)."""
        row = self._row
        k = self.kernel.load_all()
        above = self.src.load_row(row - 1)
        here = self.src.load_row(row)
        below = self.src.load_row(row + 1)
        out = here.copy()
        for col in range(1, self.width - 1):
            tile = np.array([above[col - 1:col + 2],
                             here[col - 1:col + 2],
                             below[col - 1:col + 2]])
            out[col] = float((tile * k).sum())
        self.dst.store_row(row, out)
        self._row += 1
        if self._row >= self.height - 1:
            self._row = 1
        return float(out.mean())

    def verify(self) -> bool:
        """The normalized kernel preserves interior brightness."""
        src = self.src.load_all()[1:-1, 1:-1]
        dst = self.dst.load_all()[1:-1, 1:-1]
        return bool(abs(dst.mean() - src.mean()) / src.mean() < 0.05)


class NabKernel(SpecKernel):
    """Lennard-Jones molecular dynamics (544.nab's force loops)."""

    name = "nab"

    def __init__(self, n_particles: int = 48, seed: int = 6) -> None:
        self.n = n_particles
        self.rng = np.random.default_rng(seed)
        self.dt = 0.001
        self.box = 12.0

    def setup(self, manager: PmoManager) -> None:
        self._pmo_pos = manager.create("nab-positions", 4 * MIB)
        self._pmo_vel = manager.create("nab-velocities", 4 * MIB)
        self._pmo_force = manager.create("nab-forces", 4 * MIB)
        self.pos = PmoArray.create(self._pmo_pos, (self.n, 3))
        self.vel = PmoArray.create(self._pmo_vel, (self.n, 3))
        self.force = PmoArray.create(self._pmo_force, (self.n, 3))
        # A jittered lattice avoids overlapping particles.
        grid = int(np.ceil(self.n ** (1 / 3)))
        points = []
        for i in range(self.n):
            x, y, z = i % grid, (i // grid) % grid, i // (grid * grid)
            points.append((x, y, z))
        pos = (np.array(points, dtype=float) + 0.5) \
            * (self.box / grid)
        pos += 0.05 * self.rng.standard_normal(pos.shape)
        self.pos.store_all(pos)
        vel = self.rng.standard_normal((self.n, 3)) * 0.1
        vel -= vel.mean(axis=0)   # zero net momentum
        self.vel.store_all(vel)
        self.force.store_all(self._compute_forces(pos))

    def pmo_names(self) -> List[str]:
        return ["nab-positions", "nab-velocities", "nab-forces"]

    def _compute_forces(self, pos: np.ndarray) -> np.ndarray:
        delta = pos[:, None, :] - pos[None, :, :]
        delta -= self.box * np.round(delta / self.box)  # min image
        r2 = (delta ** 2).sum(axis=2)
        np.fill_diagonal(r2, np.inf)
        r2 = np.maximum(r2, 0.64)  # soften the core
        inv6 = r2 ** -3
        magnitude = 24 * (2 * inv6 ** 2 - inv6) / r2
        return (magnitude[:, :, None] * delta).sum(axis=1)

    def step(self) -> float:
        """One velocity-Verlet step; returns kinetic energy."""
        pos = self.pos.load_all()
        vel = self.vel.load_all()
        force = self.force.load_all()
        vel_half = vel + 0.5 * self.dt * force
        pos_new = (pos + self.dt * vel_half) % self.box
        force_new = self._compute_forces(pos_new)
        vel_new = vel_half + 0.5 * self.dt * force_new
        self.pos.store_all(pos_new)
        self.vel.store_all(vel_new)
        self.force.store_all(force_new)
        return float(0.5 * (vel_new ** 2).sum())

    def verify(self) -> bool:
        """Momentum stays (near) zero and nothing exploded."""
        vel = self.vel.load_all()
        momentum = np.abs(vel.sum(axis=0)).max()
        return bool(momentum < 1.0 and np.isfinite(vel).all()
                    and np.abs(vel).max() < 100.0)


class XzKernel(SpecKernel):
    """LZ77 with a hash-chain match finder (657.xz's hot loop).

    Six PMOs used in stages, like the real benchmark: input text,
    hash heads, collision chains, output tokens, a literals staging
    buffer, and a scratch window.  ``verify`` decompresses the token
    stream and compares with the input.
    """

    name = "xz"

    MIN_MATCH = 4
    MAX_MATCH = 64
    HASH_BITS = 12
    TOKEN = struct.Struct("<BHH")   # kind, offset/char, length

    def __init__(self, chunk: int = 1024, total: int = 16 * 1024,
                 seed: int = 8) -> None:
        self.chunk = chunk
        self.total = total
        self.rng = np.random.default_rng(seed)
        self._cursor = 0
        self._out_count = 0

    def setup(self, manager: PmoManager) -> None:
        names = self.pmo_names()
        self._pmos = {name: manager.create(name, 4 * MIB)
                      for name in names}
        # Compressible input: repeated dictionary words + noise.
        words = [b"persistent", b"memory", b"object", b"window",
                 b"exposure", b"attach", b"detach", b"terp"]
        data = bytearray()
        while len(data) < self.total:
            if self.rng.random() < 0.85:
                data += words[int(self.rng.integers(0, len(words)))]
                data += b" "
            else:
                data += bytes(self.rng.integers(
                    97, 123, size=3, dtype=np.uint8))
        plain = bytes(data[:self.total])
        inp = self._pmos["xz-input"]
        self._input_oid = inp.pmalloc(self.total)
        inp.write(self._input_oid.offset, plain)
        inp.root_oid = self._input_oid
        hash_size = 1 << self.HASH_BITS
        self.heads = PmoArray.create(self._pmos["xz-hash"],
                                     (hash_size,), dtype=np.int64)
        self.heads.store_all(np.full(hash_size, -1, dtype=np.int64))
        self.chains = PmoArray.create(self._pmos["xz-chain"],
                                      (self.total,), dtype=np.int64)
        self.chains.store_all(np.full(self.total, -1, dtype=np.int64))
        self._token_oid = self._pmos["xz-tokens"].pmalloc(
            self.total * self.TOKEN.size)
        self._lit_buf = PmoArray.create(self._pmos["xz-literals"],
                                        (self.chunk,), dtype=np.uint8)
        self._window = PmoArray.create(self._pmos["xz-window"],
                                       (self.chunk,), dtype=np.uint8)

    def pmo_names(self) -> List[str]:
        return ["xz-input", "xz-hash", "xz-chain", "xz-tokens",
                "xz-literals", "xz-window"]

    def _hash(self, data: bytes) -> int:
        value = int.from_bytes(data[:self.MIN_MATCH], "little")
        return (value * 2654435761) % (1 << self.HASH_BITS)

    def step(self) -> float:
        """Compress one chunk; returns the achieved ratio so far."""
        if self._cursor >= self.total:
            return self.ratio()
        end = min(self._cursor + self.chunk, self.total)
        data = self._pmos["xz-input"].read(self._input_oid.offset,
                                           self.total)
        heads = self.heads.load()
        chains = self.chains.load()
        tokens_pmo = self._pmos["xz-tokens"]
        pos = self._cursor
        while pos < end:
            best_len = 0
            best_offset = 0
            if pos + self.MIN_MATCH <= self.total:
                h = self._hash(data[pos:pos + self.MIN_MATCH])
                candidate = int(heads[h])
                tries = 0
                while candidate >= 0 and tries < 16:
                    length = 0
                    limit = min(self.MAX_MATCH, self.total - pos)
                    while length < limit and \
                            data[candidate + length] == \
                            data[pos + length]:
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_offset = pos - candidate
                    candidate = int(chains[candidate])
                    tries += 1
                chains[pos] = heads[h]
                heads[h] = pos
            if best_len >= self.MIN_MATCH and best_offset < 65536:
                token = self.TOKEN.pack(1, best_offset, best_len)
                pos += best_len
            else:
                token = self.TOKEN.pack(0, data[pos], 1)
                pos += 1
            tokens_pmo.write(self._token_oid.offset
                             + self._out_count * self.TOKEN.size,
                             token)
            self._out_count += 1
        self.heads.store(heads)
        self.chains.store(chains)
        # A match may legally run past the chunk boundary; the cursor
        # must follow it or the overlap would be emitted twice.
        self._cursor = pos
        return self.ratio()

    def ratio(self) -> float:
        if self._cursor == 0:
            return 1.0
        return (self._out_count * self.TOKEN.size) / self._cursor

    def decompress(self) -> bytes:
        tokens_pmo = self._pmos["xz-tokens"]
        out = bytearray()
        for i in range(self._out_count):
            raw = tokens_pmo.read(self._token_oid.offset
                                  + i * self.TOKEN.size,
                                  self.TOKEN.size)
            kind, a, b = self.TOKEN.unpack(raw)
            if kind == 0:
                out.append(a)
            else:
                start = len(out) - a
                for j in range(b):
                    out.append(out[start + j])
        return bytes(out)

    def verify(self) -> bool:
        original = self._pmos["xz-input"].read(self._input_oid.offset,
                                               self.total)
        return self.decompress() == original[:self._cursor]


ALL_KERNELS = {
    "mcf": McfKernel,
    "lbm": LbmKernel,
    "imagick": ImagickKernel,
    "nab": NabKernel,
    "xz": XzKernel,
}


def make_kernel(name: str, **kwargs) -> SpecKernel:
    if name not in ALL_KERNELS:
        raise KeyError(f"unknown kernel {name!r}")
    return ALL_KERNELS[name](**kwargs)
