"""A persistent chained hash map on a PMO (WHISPER's ``hashmap``).

Layout (all offsets are within the owning PMO, linked by packed OIDs):

* **header** (from the PMO root OID): magic, bucket count, size;
* **bucket array**: ``nbuckets`` packed OIDs, each the head of a chain;
* **entry nodes**: ``[next_oid u64][hash u64][klen u32][vlen u32]
  [key bytes][value bytes]``.

The map is fully persistent: every pointer is an OID, so the structure
survives reattachment at a different base address and crash-recovery
(structural updates run inside redo-log transactions).
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.core.errors import PmoError
from repro.pmo.object_id import Oid

_HEADER = struct.Struct("<QQQ")            # magic, nbuckets, size
_ENTRY_HDR = struct.Struct("<QQII")        # next, hash, klen, vlen
_MAGIC = 0x48534D41505F3232                # "HSMAP_22"


def _fnv1a(data: bytes) -> int:
    """FNV-1a 64-bit — a stable, dependency-free hash for keys."""
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class PersistentHashMap:
    """Chained hash map rooted at the PMO's root OID."""

    def __init__(self, pmo, *, root: Optional[Oid] = None) -> None:
        self.pmo = pmo
        if root is not None:
            self._root = root
            magic, self.nbuckets, _ = _HEADER.unpack(
                pmo.read(root.offset, _HEADER.size))
            if magic != _MAGIC:
                raise PmoError("not a PersistentHashMap root")
        else:
            raise PmoError("use create() or open()")

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, pmo, nbuckets: int = 1024) -> "PersistentHashMap":
        """Format a new map on ``pmo`` and point the PMO root at it."""
        root = pmo.pmalloc(_HEADER.size + 8 * nbuckets)
        pmo.write(root.offset, _HEADER.pack(_MAGIC, nbuckets, 0))
        pmo.write(root.offset + _HEADER.size, b"\x00" * (8 * nbuckets))
        pmo.root_oid = root
        return cls(pmo, root=root)

    @classmethod
    def open(cls, pmo) -> "PersistentHashMap":
        """Reopen the map a previous run created (root OID on the PMO)."""
        root = pmo.root_oid
        if root.is_null():
            raise PmoError("PMO has no root object")
        return cls(pmo, root=root)

    # -- internals -------------------------------------------------------------

    def _bucket_offset(self, index: int) -> int:
        return self._root.offset + _HEADER.size + 8 * index

    def _bucket_head(self, index: int) -> Oid:
        return Oid.unpack(self.pmo.read_u64(self._bucket_offset(index)))

    def _set_bucket_head(self, index: int, oid: Oid) -> None:
        self.pmo.write_u64(self._bucket_offset(index), oid.pack())

    def _read_entry(self, oid: Oid) -> Tuple[Oid, int, bytes, bytes]:
        nxt, h, klen, vlen = _ENTRY_HDR.unpack(
            self.pmo.read(oid.offset, _ENTRY_HDR.size))
        key = self.pmo.read(oid.offset + _ENTRY_HDR.size, klen)
        value = self.pmo.read(oid.offset + _ENTRY_HDR.size + klen, vlen)
        return Oid.unpack(nxt), h, key, value

    def _write_entry(self, key: bytes, value: bytes, nxt: Oid,
                     h: int) -> Oid:
        oid = self.pmo.pmalloc(_ENTRY_HDR.size + len(key) + len(value))
        self.pmo.write(oid.offset, _ENTRY_HDR.pack(
            nxt.pack(), h, len(key), len(value)) + key + value)
        return oid

    def _size_offset(self) -> int:
        return self._root.offset + 16

    # -- map API -----------------------------------------------------------------

    def __len__(self) -> int:
        return self.pmo.read_u64(self._size_offset())

    def _bump_size(self, delta: int) -> None:
        self.pmo.write_u64(self._size_offset(), len(self) + delta)

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update, crash-consistently."""
        h = _fnv1a(key)
        index = h % self.nbuckets
        self.pmo.begin_tx()
        try:
            head = self._bucket_head(index)
            # Update in place (same-size value) or unlink + relink.
            oid = head
            prev: Optional[Oid] = None
            while not oid.is_null():
                nxt, eh, ekey, evalue = self._read_entry(oid)
                if eh == h and ekey == key:
                    if len(evalue) == len(value):
                        self.pmo.write(
                            oid.offset + _ENTRY_HDR.size + len(key), value)
                        self.pmo.commit_tx()
                        return
                    # Size changed: replace the node.
                    new = self._write_entry(key, value, nxt, h)
                    if prev is None:
                        self._set_bucket_head(index, new)
                    else:
                        self.pmo.write_u64(prev.offset, new.pack())
                    self.pmo.commit_tx()
                    self.pmo.pfree(oid)
                    return
                prev, oid = oid, nxt
            new = self._write_entry(key, value, head, h)
            self._set_bucket_head(index, new)
            self._bump_size(+1)
            self.pmo.commit_tx()
        except Exception:
            if self.pmo.log.in_transaction:
                self.pmo.abort_tx()
            raise

    def get(self, key: bytes) -> Optional[bytes]:
        h = _fnv1a(key)
        oid = self._bucket_head(h % self.nbuckets)
        while not oid.is_null():
            nxt, eh, ekey, evalue = self._read_entry(oid)
            if eh == h and ekey == key:
                return evalue
            oid = nxt
        return None

    def delete(self, key: bytes) -> bool:
        h = _fnv1a(key)
        index = h % self.nbuckets
        self.pmo.begin_tx()
        try:
            oid = self._bucket_head(index)
            prev: Optional[Oid] = None
            while not oid.is_null():
                nxt, eh, ekey, _ = self._read_entry(oid)
                if eh == h and ekey == key:
                    if prev is None:
                        self._set_bucket_head(index, nxt)
                    else:
                        self.pmo.write_u64(prev.offset, nxt.pack())
                    self._bump_size(-1)
                    self.pmo.commit_tx()
                    self.pmo.pfree(oid)
                    return True
                prev, oid = oid, nxt
            self.pmo.commit_tx()
            return False
        except Exception:
            if self.pmo.log.in_transaction:
                self.pmo.abort_tx()
            raise

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for index in range(self.nbuckets):
            oid = self._bucket_head(index)
            while not oid.is_null():
                nxt, _, key, value = self._read_entry(oid)
                yield key, value
                oid = nxt

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None
