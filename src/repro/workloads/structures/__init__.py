"""Persistent data structures built on the PMO substrate.

These are real implementations (bytes on a PMO, reachable from the
PMO's root OID, crash-consistent via the redo log) of the data
structures the WHISPER benchmarks exercise: a chained hash map, a
crit-bit tree, an Echo-style versioned KV store, and TPC-C-style
tables.  The simulator's access statistics are *measured* from these
structures rather than invented.
"""

from repro.workloads.structures.counting import CountingPmo
from repro.workloads.structures.hashmap import PersistentHashMap
from repro.workloads.structures.ctree import CritBitTree
from repro.workloads.structures.kvstore import VersionedKvStore
from repro.workloads.structures.tpcc import TpccDatabase

__all__ = [
    "CountingPmo", "PersistentHashMap", "CritBitTree",
    "VersionedKvStore", "TpccDatabase",
]
