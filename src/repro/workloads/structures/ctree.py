"""A persistent crit-bit tree on a PMO (WHISPER's ``ctree``).

A crit-bit (PATRICIA) trie over byte-string keys: internal nodes store
the position of the first bit where their two subtrees differ, leaves
store key/value pairs.  Lookups inspect O(key length) bits; inserts
allocate one leaf and one internal node.

Node layouts::

    internal: [tag u8=1][pad][byte u32][otherbits u8][pad]
              [child0 oid u64][child1 oid u64]
    leaf:     [tag u8=0][pad][klen u32][vlen u32]
              [key bytes][value bytes]

All child links are packed OIDs; structural mutations run inside redo
log transactions.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.core.errors import PmoError
from repro.pmo.object_id import Oid

_INTERNAL = struct.Struct("<BxxxIBxxxQQ")   # tag, byte, otherbits, c0, c1
_LEAF_HDR = struct.Struct("<BxxxII")        # tag, klen, vlen
_ROOT = struct.Struct("<QQQ")               # magic, root oid, size
_MAGIC = 0x43545245455F3232                 # "CTREE_22"

TAG_LEAF = 0
TAG_INTERNAL = 1


class CritBitTree:
    """Crit-bit trie rooted at the PMO's root OID."""

    def __init__(self, pmo, *, root: Optional[Oid] = None) -> None:
        self.pmo = pmo
        if root is None:
            raise PmoError("use create() or open()")
        self._root = root
        magic = pmo.read_u64(root.offset)
        if magic != _MAGIC:
            raise PmoError("not a CritBitTree root")

    @classmethod
    def create(cls, pmo) -> "CritBitTree":
        root = pmo.pmalloc(_ROOT.size)
        pmo.write(root.offset, _ROOT.pack(_MAGIC, 0, 0))
        pmo.root_oid = root
        return cls(pmo, root=root)

    @classmethod
    def open(cls, pmo) -> "CritBitTree":
        root = pmo.root_oid
        if root.is_null():
            raise PmoError("PMO has no root object")
        return cls(pmo, root=root)

    # -- persistent fields ------------------------------------------------

    @property
    def _top(self) -> Oid:
        return Oid.unpack(self.pmo.read_u64(self._root.offset + 8))

    def _set_top(self, oid: Oid) -> None:
        self.pmo.write_u64(self._root.offset + 8, oid.pack())

    def __len__(self) -> int:
        return self.pmo.read_u64(self._root.offset + 16)

    def _bump_size(self, delta: int) -> None:
        self.pmo.write_u64(self._root.offset + 16, len(self) + delta)

    # -- node I/O -----------------------------------------------------------

    def _tag(self, oid: Oid) -> int:
        return self.pmo.read(oid.offset, 1)[0]

    def _read_internal(self, oid: Oid) -> Tuple[int, int, Oid, Oid]:
        _, byte, otherbits, c0, c1 = _INTERNAL.unpack(
            self.pmo.read(oid.offset, _INTERNAL.size))
        return byte, otherbits, Oid.unpack(c0), Oid.unpack(c1)

    def _read_leaf(self, oid: Oid) -> Tuple[bytes, bytes]:
        _, klen, vlen = _LEAF_HDR.unpack(
            self.pmo.read(oid.offset, _LEAF_HDR.size))
        key = self.pmo.read(oid.offset + _LEAF_HDR.size, klen)
        value = self.pmo.read(oid.offset + _LEAF_HDR.size + klen, vlen)
        return key, value

    def _new_leaf(self, key: bytes, value: bytes) -> Oid:
        oid = self.pmo.pmalloc(_LEAF_HDR.size + len(key) + len(value))
        self.pmo.write(oid.offset, _LEAF_HDR.pack(TAG_LEAF, len(key),
                                                  len(value)) + key + value)
        return oid

    def _new_internal(self, byte: int, otherbits: int, c0: Oid,
                      c1: Oid) -> Oid:
        oid = self.pmo.pmalloc(_INTERNAL.size)
        self.pmo.write(oid.offset, _INTERNAL.pack(
            TAG_INTERNAL, byte, otherbits, c0.pack(), c1.pack()))
        return oid

    # -- crit-bit mechanics ----------------------------------------------------

    @staticmethod
    def _direction(key: bytes, byte: int, otherbits: int) -> int:
        c = key[byte] if byte < len(key) else 0
        return 1 if (1 + (otherbits | c)) >> 8 else 0

    def _walk_to_leaf(self, key: bytes) -> Oid:
        oid = self._top
        while self._tag(oid) == TAG_INTERNAL:
            byte, otherbits, c0, c1 = self._read_internal(oid)
            oid = c1 if self._direction(key, byte, otherbits) else c0
        return oid

    # -- tree API -----------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        if self._top.is_null():
            return None
        leaf = self._walk_to_leaf(key)
        lkey, lvalue = self._read_leaf(leaf)
        return lvalue if lkey == key else None

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert or update (crash-consistent)."""
        self._stale_leaf: Optional[Oid] = None
        self.pmo.begin_tx()
        try:
            self._insert_locked(key, value)
            self.pmo.commit_tx()
        except Exception:
            if self.pmo.log.in_transaction:
                self.pmo.abort_tx()
            raise
        if self._stale_leaf is not None:
            self.pmo.pfree(self._stale_leaf)
            self._stale_leaf = None

    def _insert_locked(self, key: bytes, value: bytes) -> None:
        if self._top.is_null():
            self._set_top(self._new_leaf(key, value))
            self._bump_size(+1)
            return
        best = self._walk_to_leaf(key)
        bkey, bvalue = self._read_leaf(best)
        if bkey == key:
            # Update: same-size in place, otherwise replace the leaf.
            if len(bvalue) == len(value):
                self.pmo.write(best.offset + _LEAF_HDR.size + len(key),
                               value)
                return
            new_leaf = self._new_leaf(key, value)
            self._replace_child(key, best, new_leaf)
            self._stale_leaf = best   # freed after the tx commits
            return
        # Find the critical bit between key and bkey.
        byte, otherbits = self._critical_bit(key, bkey)
        newdir = self._direction(bkey, byte, otherbits)
        leaf = self._new_leaf(key, value)
        # Walk again to find the insertion point (topmost node whose
        # crit-bit is below the new one).
        parent: Optional[Oid] = None
        parent_dir = 0
        oid = self._top
        while self._tag(oid) == TAG_INTERNAL:
            nbyte, nother, c0, c1 = self._read_internal(oid)
            # Stop when this node's crit-bit is less significant than
            # the new one (djb's condition: byte, then otherbits).
            if (nbyte, nother) > (byte, otherbits):
                break
            parent = oid
            parent_dir = self._direction(key, nbyte, nother)
            oid = c1 if parent_dir else c0
        children = (leaf, oid) if newdir else (oid, leaf)
        node = self._new_internal(byte, otherbits, children[0], children[1])
        if parent is None:
            self._set_top(node)
        else:
            self._set_internal_child(parent, parent_dir, node)
        self._bump_size(+1)

    def _set_internal_child(self, oid: Oid, direction: int,
                            child: Oid) -> None:
        offset = oid.offset + _INTERNAL.size - 16 + 8 * direction
        self.pmo.write_u64(offset, child.pack())

    def _replace_child(self, key: bytes, old: Oid, new: Oid) -> None:
        if self._top == old:
            self._set_top(new)
            return
        oid = self._top
        while self._tag(oid) == TAG_INTERNAL:
            byte, otherbits, c0, c1 = self._read_internal(oid)
            direction = self._direction(key, byte, otherbits)
            child = c1 if direction else c0
            if child == old:
                self._set_internal_child(oid, direction, new)
                return
            oid = child
        raise PmoError("leaf to replace not found")

    @staticmethod
    def _critical_bit(a: bytes, b: bytes) -> Tuple[int, int]:
        length = max(len(a), len(b))
        for byte in range(length):
            ca = a[byte] if byte < len(a) else 0
            cb = b[byte] if byte < len(b) else 0
            if ca != cb:
                diff = ca ^ cb
                # Isolate the most significant differing bit,
                # expressed crit-bit style as inverted mask.
                while diff & (diff - 1):
                    diff &= diff - 1
                return byte, diff ^ 0xFF
        raise PmoError("keys are identical")

    def delete(self, key: bytes) -> bool:
        if self._top.is_null():
            return False
        self._dead_nodes = []
        self.pmo.begin_tx()
        try:
            removed = self._delete_locked(key)
            self.pmo.commit_tx()
        except Exception:
            if self.pmo.log.in_transaction:
                self.pmo.abort_tx()
            raise
        for oid in self._dead_nodes:
            self.pmo.pfree(oid)
        self._dead_nodes = []
        return removed

    def _delete_locked(self, key: bytes) -> bool:
        grand: Optional[Oid] = None
        grand_dir = 0
        parent: Optional[Oid] = None
        parent_dir = 0
        oid = self._top
        while self._tag(oid) == TAG_INTERNAL:
            byte, otherbits, c0, c1 = self._read_internal(oid)
            direction = self._direction(key, byte, otherbits)
            grand, grand_dir = parent, parent_dir
            parent, parent_dir = oid, direction
            oid = c1 if direction else c0
        lkey, _ = self._read_leaf(oid)
        if lkey != key:
            return False
        if parent is None:
            self._set_top(Oid.NULL)
        else:
            _, _, c0, c1 = self._read_internal(parent)
            sibling = c0 if parent_dir else c1
            if grand is None:
                self._set_top(sibling)
            else:
                self._set_internal_child(grand, grand_dir, sibling)
            self._dead_nodes.append(parent)
        self._dead_nodes.append(oid)
        self._bump_size(-1)
        return True

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """In-order iteration (sorted by key bits)."""
        def rec(oid: Oid):
            if oid.is_null():
                return
            if self._tag(oid) == TAG_LEAF:
                yield self._read_leaf(oid)
            else:
                _, _, c0, c1 = self._read_internal(oid)
                yield from rec(c0)
                yield from rec(c1)
        yield from rec(self._top)
