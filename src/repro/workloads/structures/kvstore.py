"""An Echo-style versioned key-value store on a PMO.

Echo (WHISPER) is a persistent KV store with multi-version entries: a
``put`` appends a new version rather than overwriting, and ``get``
returns the newest committed version; old versions remain readable
until garbage-collected.  Redis-style usage maps onto the same store
with GC after every update (single-version behaviour).

Structure on the PMO:

* a :class:`~repro.workloads.structures.hashmap.PersistentHashMap`
  from key to the head of a **version chain**;
* version nodes: ``[prev_oid u64][version u64][vlen u32][value]``.

The version counter itself is persistent (stored beside the index
root), so version ordering survives restarts.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.core.errors import PmoError
from repro.pmo.object_id import Oid
from repro.workloads.structures.hashmap import PersistentHashMap

_VERSION_HDR = struct.Struct("<QQI")   # prev, version, vlen


class VersionedKvStore:
    """Multi-version KV store (Echo semantics)."""

    def __init__(self, pmo, index: PersistentHashMap,
                 counter_oid: Oid) -> None:
        self.pmo = pmo
        self.index = index
        self._counter = counter_oid

    @classmethod
    def create(cls, pmo, nbuckets: int = 1024) -> "VersionedKvStore":
        index = PersistentHashMap.create(pmo, nbuckets)
        counter = pmo.pmalloc(8)
        pmo.write_u64(counter.offset, 0)
        # Remember the counter next to the index root: store its OID
        # in the header's spare word (root offset + 8 is nbuckets, so
        # we append a dedicated cell keyed in the map itself).
        index.put(b"\x00__kv_counter__", struct.pack("<Q", counter.pack()))
        return cls(pmo, index, counter)

    @classmethod
    def open(cls, pmo) -> "VersionedKvStore":
        index = PersistentHashMap.open(pmo)
        raw = index.get(b"\x00__kv_counter__")
        if raw is None:
            raise PmoError("PMO does not hold a VersionedKvStore")
        counter = Oid.unpack(struct.unpack("<Q", raw)[0])
        return cls(pmo, index, counter)

    # -- version plumbing ------------------------------------------------

    def _next_version(self) -> int:
        version = self.pmo.read_u64(self._counter.offset) + 1
        self.pmo.write_u64(self._counter.offset, version)
        return version

    def _read_version(self, oid: Oid) -> Tuple[Oid, int, bytes]:
        prev, version, vlen = _VERSION_HDR.unpack(
            self.pmo.read(oid.offset, _VERSION_HDR.size))
        value = self.pmo.read(oid.offset + _VERSION_HDR.size, vlen)
        return Oid.unpack(prev), version, value

    def _head_of(self, key: bytes) -> Optional[Oid]:
        raw = self.index.get(key)
        if raw is None:
            return None
        return Oid.unpack(struct.unpack("<Q", raw)[0])

    # -- store API -----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> int:
        """Append a new version of ``key``; returns its version number."""
        if key.startswith(b"\x00"):
            raise PmoError("keys starting with NUL are reserved")
        head = self._head_of(key)
        version = self._next_version()
        node = self.pmo.pmalloc(_VERSION_HDR.size + len(value))
        self.pmo.write(node.offset, _VERSION_HDR.pack(
            (head or Oid.NULL).pack(), version, len(value)) + value)
        self.index.put(key, struct.pack("<Q", node.pack()))
        return version

    def get(self, key: bytes) -> Optional[bytes]:
        """The newest version's value."""
        head = self._head_of(key)
        if head is None:
            return None
        _, _, value = self._read_version(head)
        return value

    def get_version(self, key: bytes, version: int) -> Optional[bytes]:
        """Read a specific historical version (Echo's time travel)."""
        oid = self._head_of(key)
        while oid is not None and not oid.is_null():
            prev, v, value = self._read_version(oid)
            if v == version:
                return value
            if v < version:
                return None   # chain is newest-first
            oid = prev
        return None

    def versions(self, key: bytes) -> List[int]:
        """All retained version numbers, newest first."""
        out = []
        oid = self._head_of(key)
        while oid is not None and not oid.is_null():
            prev, v, _ = self._read_version(oid)
            out.append(v)
            oid = prev
        return out

    def delete(self, key: bytes) -> bool:
        """Remove the key and free its whole version chain."""
        head = self._head_of(key)
        if head is None:
            return False
        self.index.delete(key)
        oid = head
        while not oid.is_null():
            prev, _, _ = self._read_version(oid)
            self.pmo.pfree(oid)
            oid = prev
        return True

    def gc(self, key: bytes, keep: int = 1) -> int:
        """Drop all but the newest ``keep`` versions; returns #freed.

        Redis-style single-version behaviour is ``gc(key, keep=1)``
        after every put.
        """
        if keep < 1:
            raise PmoError("must keep at least one version")
        oid = self._head_of(key)
        kept = 0
        last_kept: Optional[Oid] = None
        while oid is not None and not oid.is_null():
            prev, _, _ = self._read_version(oid)
            kept += 1
            if kept == keep:
                last_kept = oid
                break
            oid = prev
        if last_kept is None:
            return 0
        # Cut the chain and free the tail.
        prev, version, vlen = _VERSION_HDR.unpack(
            self.pmo.read(last_kept.offset, _VERSION_HDR.size))
        self.pmo.write(last_kept.offset, _VERSION_HDR.pack(
            Oid.NULL.pack(), version, vlen))
        freed = 0
        oid = Oid.unpack(prev)
        while not oid.is_null():
            nxt, _, _ = self._read_version(oid)
            self.pmo.pfree(oid)
            freed += 1
            oid = nxt
        return freed

    def keys(self) -> Iterator[bytes]:
        for key, _ in self.index.items():
            if not key.startswith(b"\x00"):
                yield key
