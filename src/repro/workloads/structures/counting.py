"""Access-counting PMO proxy.

Wraps a :class:`~repro.pmo.pmo.Pmo` and counts the reads and writes
flowing through it.  The WHISPER trace generators use it to *measure*
per-operation access statistics from the real data structures instead
of guessing burst sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.core.units import PAGE_SIZE


@dataclass
class AccessCounts:
    reads: int = 0
    writes: int = 0
    pages: Set[int] = field(default_factory=set)

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def unique_pages(self) -> int:
        return len(self.pages)

    @property
    def write_fraction(self) -> float:
        return self.writes / self.total if self.total else 0.0

    def reset(self) -> "AccessCounts":
        snapshot = AccessCounts(self.reads, self.writes, set(self.pages))
        self.reads = 0
        self.writes = 0
        self.pages.clear()
        return snapshot


class CountingPmo:
    """A Pmo wrapper that tallies storage-level reads and writes.

    Only the data-access surface is intercepted; allocation and
    transaction calls pass straight through (their internal accesses
    count too, since they go through read/write).
    """

    def __init__(self, pmo) -> None:
        self._pmo = pmo
        self.counts = AccessCounts()

    # -- counted access ------------------------------------------------

    def read(self, offset: int, n: int) -> bytes:
        self.counts.reads += 1
        self.counts.pages.add(offset // PAGE_SIZE)
        return self._pmo.read(offset, n)

    def write(self, offset: int, data: bytes) -> None:
        self.counts.writes += 1
        self.counts.pages.add(offset // PAGE_SIZE)
        self._pmo.write(offset, data)

    def read_u64(self, offset: int) -> int:
        self.counts.reads += 1
        self.counts.pages.add(offset // PAGE_SIZE)
        return self._pmo.read_u64(offset)

    def write_u64(self, offset: int, value: int) -> None:
        self.counts.writes += 1
        self.counts.pages.add(offset // PAGE_SIZE)
        self._pmo.write_u64(offset, value)

    # -- passthrough -----------------------------------------------------

    def __getattr__(self, name):
        return getattr(self._pmo, name)
