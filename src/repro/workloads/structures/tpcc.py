"""TPC-C-style transactional tables on a PMO (WHISPER's ``TPCC``).

A small but genuine subset of TPC-C: WAREHOUSE, DISTRICT, CUSTOMER,
and ORDER tables laid out as fixed-stride record arrays inside one
PMO, plus the NEW-ORDER and PAYMENT transactions updating them under
redo-log protection.  Record sizes and the transaction shapes follow
the benchmark's structure (scaled down) so the access patterns the
simulator measures are representative.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.errors import PmoError
from repro.pmo.object_id import Oid

_HEADER = struct.Struct("<QIIII")  # magic, warehouses, districts/w, customers/d, max orders
_MAGIC = 0x545043435F323232  # "TPCC_222"

WAREHOUSE_STRIDE = 64     # ytd balance, tax, ...
DISTRICT_STRIDE = 64      # ytd, tax, next_o_id, ...
CUSTOMER_STRIDE = 128     # balance, ytd_payment, payment_cnt, data
ORDER_STRIDE = 64         # customer, item count, amount, timestamp


@dataclass(frozen=True)
class TpccConfig:
    warehouses: int = 2
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    max_orders: int = 10_000


class TpccDatabase:
    """The persistent database and its two core transactions."""

    def __init__(self, pmo, root: Oid, config: TpccConfig) -> None:
        self.pmo = pmo
        self._root = root
        self.config = config
        base = root.offset + _HEADER.size + 16
        c = config
        self._warehouse_base = base
        self._district_base = (self._warehouse_base
                               + c.warehouses * WAREHOUSE_STRIDE)
        self._customer_base = (self._district_base
                               + c.warehouses * c.districts_per_warehouse
                               * DISTRICT_STRIDE)
        self._order_base = (self._customer_base
                            + c.warehouses * c.districts_per_warehouse
                            * c.customers_per_district * CUSTOMER_STRIDE)
        self._size = (self._order_base - root.offset
                      + c.max_orders * ORDER_STRIDE)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, pmo, config: TpccConfig = TpccConfig()) -> "TpccDatabase":
        c = config
        records = (c.warehouses * WAREHOUSE_STRIDE
                   + c.warehouses * c.districts_per_warehouse
                   * DISTRICT_STRIDE
                   + c.warehouses * c.districts_per_warehouse
                   * c.customers_per_district * CUSTOMER_STRIDE
                   + c.max_orders * ORDER_STRIDE)
        root = pmo.pmalloc(_HEADER.size + 16 + records)
        pmo.write(root.offset, _HEADER.pack(
            _MAGIC, c.warehouses, c.districts_per_warehouse,
            c.customers_per_district, c.max_orders))
        pmo.write_u64(root.offset + _HEADER.size, 0)       # order count
        pmo.write_u64(root.offset + _HEADER.size + 8, 0)   # tx count
        pmo.root_oid = root
        return cls(pmo, root, config)

    @classmethod
    def open(cls, pmo) -> "TpccDatabase":
        root = pmo.root_oid
        if root.is_null():
            raise PmoError("PMO has no root object")
        magic, w, d, cust, orders = _HEADER.unpack(
            pmo.read(root.offset, _HEADER.size))
        if magic != _MAGIC:
            raise PmoError("not a TpccDatabase root")
        return cls(pmo, root, TpccConfig(w, d, cust, orders))

    # -- record addressing -----------------------------------------------------

    def _warehouse_off(self, w: int) -> int:
        self._check(w, self.config.warehouses, "warehouse")
        return self._warehouse_base + w * WAREHOUSE_STRIDE

    def _district_off(self, w: int, d: int) -> int:
        self._check(w, self.config.warehouses, "warehouse")
        self._check(d, self.config.districts_per_warehouse, "district")
        index = w * self.config.districts_per_warehouse + d
        return self._district_base + index * DISTRICT_STRIDE

    def _customer_off(self, w: int, d: int, c: int) -> int:
        self._check(w, self.config.warehouses, "warehouse")
        self._check(d, self.config.districts_per_warehouse, "district")
        self._check(c, self.config.customers_per_district, "customer")
        index = ((w * self.config.districts_per_warehouse + d)
                 * self.config.customers_per_district + c)
        return self._customer_base + index * CUSTOMER_STRIDE

    def _order_off(self, o: int) -> int:
        self._check(o, self.config.max_orders, "order")
        return self._order_base + o * ORDER_STRIDE

    def _check(self, index: int, bound: int, what: str) -> None:
        if not 0 <= index < bound:
            raise PmoError(f"{what} index {index} out of range")

    # -- persistent counters -------------------------------------------------------

    @property
    def order_count(self) -> int:
        return self.pmo.read_u64(self._root.offset + _HEADER.size)

    def _set_order_count(self, n: int) -> None:
        self.pmo.write_u64(self._root.offset + _HEADER.size, n)

    @property
    def tx_count(self) -> int:
        return self.pmo.read_u64(self._root.offset + _HEADER.size + 8)

    def _bump_tx_count(self) -> None:
        self.pmo.write_u64(self._root.offset + _HEADER.size + 8,
                           self.tx_count + 1)

    # -- transactions -----------------------------------------------------------------

    def new_order(self, warehouse: int, district: int, customer: int,
                  item_count: int, amount_cents: int) -> int:
        """The NEW-ORDER transaction; returns the order id."""
        if self.order_count >= self.config.max_orders:
            raise PmoError("order table full")
        self.pmo.begin_tx()
        try:
            d_off = self._district_off(warehouse, district)
            next_o_id = self.pmo.read_u64(d_off + 16)
            self.pmo.write_u64(d_off + 16, next_o_id + 1)   # D_NEXT_O_ID
            order_id = self.order_count
            o_off = self._order_off(order_id)
            self.pmo.write(o_off, struct.pack(
                "<QIIQ",
                (warehouse << 32) | (district << 16) | customer,
                item_count, 0, amount_cents))
            self._set_order_count(order_id + 1)
            # Customer balance reflects the order.
            c_off = self._customer_off(warehouse, district, customer)
            balance = self.pmo.read_u64(c_off)
            self.pmo.write_u64(c_off, balance + amount_cents)
            self._bump_tx_count()
            self.pmo.commit_tx()
            return order_id
        except Exception:
            if self.pmo.log.in_transaction:
                self.pmo.abort_tx()
            raise

    def payment(self, warehouse: int, district: int, customer: int,
                amount_cents: int) -> None:
        """The PAYMENT transaction: W/D ytd and customer balance."""
        self.pmo.begin_tx()
        try:
            w_off = self._warehouse_off(warehouse)
            self.pmo.write_u64(w_off, self.pmo.read_u64(w_off)
                               + amount_cents)              # W_YTD
            d_off = self._district_off(warehouse, district)
            self.pmo.write_u64(d_off, self.pmo.read_u64(d_off)
                               + amount_cents)              # D_YTD
            c_off = self._customer_off(warehouse, district, customer)
            balance = self.pmo.read_u64(c_off)
            if balance < amount_cents:
                raise PmoError("insufficient balance")
            self.pmo.write_u64(c_off, balance - amount_cents)
            self.pmo.write_u64(c_off + 8, self.pmo.read_u64(c_off + 8)
                               + amount_cents)              # C_YTD_PAYMENT
            self.pmo.write_u64(c_off + 16, self.pmo.read_u64(c_off + 16)
                               + 1)                         # C_PAYMENT_CNT
            self._bump_tx_count()
            self.pmo.commit_tx()
        except Exception:
            if self.pmo.log.in_transaction:
                self.pmo.abort_tx()
            raise

    # -- reads -------------------------------------------------------------------

    def customer_balance(self, warehouse: int, district: int,
                         customer: int) -> int:
        return self.pmo.read_u64(
            self._customer_off(warehouse, district, customer))

    def warehouse_ytd(self, warehouse: int) -> int:
        return self.pmo.read_u64(self._warehouse_off(warehouse))

    def district_ytd(self, warehouse: int, district: int) -> int:
        return self.pmo.read_u64(self._district_off(warehouse, district))

    def order(self, order_id: int) -> tuple:
        ids, items, _, amount = struct.unpack(
            "<QIIQ", self.pmo.read(self._order_off(order_id), 24))
        return (ids >> 32, (ids >> 16) & 0xFFFF, ids & 0xFFFF,
                items, amount)

    def total_balance(self) -> int:
        """Sum of all customer balances (consistency invariant aid)."""
        c = self.config
        total = 0
        for w in range(c.warehouses):
            for d in range(c.districts_per_warehouse):
                for cust in range(c.customers_per_district):
                    total += self.customer_balance(w, d, cust)
        return total
