"""The six WHISPER benchmarks (Section VI: Echo, Redis, YCSB, TPCC,
ctree, hashmap).

Each benchmark couples a calibrated :class:`WhisperSpec` (window and
exposure shape from the benchmark's natural behaviour, Table III) with
a *real* operation mix over the persistent structures in
:mod:`repro.workloads.structures` — the access counts inside each
burst are measured, not assumed.

All benchmarks use a single 1GB PMO and 100K operations, per the
paper's methodology.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.workloads.structures.ctree import CritBitTree
from repro.workloads.structures.hashmap import PersistentHashMap
from repro.workloads.structures.kvstore import VersionedKvStore
from repro.workloads.structures.tpcc import TpccDatabase
from repro.workloads.whisper.base import WhisperBenchmark, WhisperSpec

_KEYSPACE = 2_000


def _key(rng: np.random.Generator) -> bytes:
    return b"key-%08d" % int(rng.integers(0, _KEYSPACE))


def _value(rng: np.random.Generator, size: int = 64) -> bytes:
    return bytes(rng.integers(65, 91, size=size, dtype=np.uint8))


# -- operation mixes over the real structures ---------------------------------

def _echo_setup(pmo, rng) -> Callable:
    """Echo: versioned KV store; puts accumulate versions, periodic GC."""
    store = VersionedKvStore.create(pmo, nbuckets=256)
    for i in range(200):
        store.put(b"key-%08d" % i, _value(rng))

    def op(rng: np.random.Generator) -> None:
        key = _key(rng)
        roll = rng.random()
        if roll < 0.6:
            store.put(key, _value(rng))
            if rng.random() < 0.1:
                store.gc(key, keep=4)
        else:
            store.get(key)
    return op


def _redis_setup(pmo, rng) -> Callable:
    """Redis: single-version KV (GC after every update), small values."""
    store = VersionedKvStore.create(pmo, nbuckets=256)
    for i in range(200):
        store.put(b"key-%08d" % i, _value(rng, 32))

    def op(rng: np.random.Generator) -> None:
        key = _key(rng)
        if rng.random() < 0.5:
            store.put(key, _value(rng, 32))
            store.gc(key, keep=1)
        else:
            store.get(key)
    return op


def _ycsb_setup(pmo, rng) -> Callable:
    """YCSB workload A: 50% reads, 50% updates over a hash map."""
    table = PersistentHashMap.create(pmo, nbuckets=512)
    for i in range(400):
        table.put(b"user%08d" % i, _value(rng, 100))

    def op(rng: np.random.Generator) -> None:
        key = b"user%08d" % int(rng.zipf(1.5) % 400)
        if rng.random() < 0.5:
            table.get(key)
        else:
            table.put(key, _value(rng, 100))
    return op


def _tpcc_setup(pmo, rng) -> Callable:
    """TPCC: NEW-ORDER / PAYMENT mix on the transactional tables."""
    db = TpccDatabase.create(pmo)

    def op(rng: np.random.Generator) -> None:
        w = int(rng.integers(0, db.config.warehouses))
        d = int(rng.integers(0, db.config.districts_per_warehouse))
        c = int(rng.integers(0, db.config.customers_per_district))
        if rng.random() < 0.55 and db.order_count < db.config.max_orders:
            db.new_order(w, d, c, int(rng.integers(1, 10)),
                         int(rng.integers(100, 5000)))
        else:
            balance = db.customer_balance(w, d, c)
            if balance > 0:
                from repro.core.errors import PmoError
                try:
                    db.payment(w, d, c, max(1, balance // 2))
                except PmoError:
                    pass
    return op


def _ctree_setup(pmo, rng) -> Callable:
    """ctree: insert/lookup/delete over the crit-bit tree."""
    tree = CritBitTree.create(pmo)
    for i in range(300):
        tree.insert(b"key-%08d" % i, _value(rng, 48))

    def op(rng: np.random.Generator) -> None:
        key = _key(rng)
        roll = rng.random()
        if roll < 0.45:
            tree.insert(key, _value(rng, 48))
        elif roll < 0.85:
            tree.get(key)
        else:
            tree.delete(key)
    return op


def _hashmap_setup(pmo, rng) -> Callable:
    """hashmap: insert/delete-heavy churn over the chained map."""
    table = PersistentHashMap.create(pmo, nbuckets=512)
    for i in range(300):
        table.put(b"key-%08d" % i, _value(rng, 64))

    def op(rng: np.random.Generator) -> None:
        key = _key(rng)
        roll = rng.random()
        if roll < 0.5:
            table.put(key, _value(rng, 64))
        elif roll < 0.8:
            table.get(key)
        else:
            table.delete(key)
    return op


# -- specs calibrated from the benchmarks' natural behaviour (Table III) ------

SPECS: Dict[str, WhisperSpec] = {
    "echo": WhisperSpec("echo", window_avg_us=17.3, window_max_us=33.5,
                        exposure_rate=0.141, region_us=1.5),
    "ycsb": WhisperSpec("ycsb", window_avg_us=13.1, window_max_us=38.1,
                        exposure_rate=0.281, region_us=0.9),
    "tpcc": WhisperSpec("tpcc", window_avg_us=11.2, window_max_us=32.5,
                        exposure_rate=0.311, region_us=0.7),
    "ctree": WhisperSpec("ctree", window_avg_us=16.3, window_max_us=39.4,
                         exposure_rate=0.222, region_us=1.8),
    "hashmap": WhisperSpec("hashmap", window_avg_us=19.7,
                           window_max_us=37.2,
                           exposure_rate=0.192, region_us=0.9),
    "redis": WhisperSpec("redis", window_avg_us=8.1, window_max_us=25.1,
                         exposure_rate=0.325, region_us=1.1),
}

_SETUPS = {
    "echo": _echo_setup,
    "redis": _redis_setup,
    "ycsb": _ycsb_setup,
    "tpcc": _tpcc_setup,
    "ctree": _ctree_setup,
    "hashmap": _hashmap_setup,
}

#: Paper ordering for tables and figures.
WHISPER_NAMES = ["echo", "ycsb", "tpcc", "ctree", "hashmap", "redis"]


def get_benchmark(name: str) -> WhisperBenchmark:
    """Construct one WHISPER benchmark by name."""
    if name not in SPECS:
        raise KeyError(f"unknown WHISPER benchmark {name!r}; "
                       f"choose from {WHISPER_NAMES}")
    return WhisperBenchmark(SPECS[name], _SETUPS[name])


def all_benchmarks() -> Dict[str, WhisperBenchmark]:
    return {name: get_benchmark(name) for name in WHISPER_NAMES}
