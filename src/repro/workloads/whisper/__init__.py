"""WHISPER benchmarks (Echo, Redis, YCSB, TPCC, ctree, hashmap)."""

from repro.workloads.whisper.base import (
    OpStats, WhisperBenchmark, WhisperSpec)
from repro.workloads.whisper.benchmarks import (
    all_benchmarks, get_benchmark, SPECS, WHISPER_NAMES)

__all__ = ["OpStats", "WhisperBenchmark", "WhisperSpec",
           "all_benchmarks", "get_benchmark", "SPECS", "WHISPER_NAMES"]
