"""WHISPER benchmark modelling: specs, measurement, trace generation.

Each WHISPER benchmark is described by a :class:`WhisperSpec` whose
shape parameters are calibrated from the paper's own measurements
(Table III's MERR columns give each benchmark's natural window
lengths and exposure rates), while the *access contents* of each
burst — how many reads/writes one operation performs, how many pages
it touches — are **measured** by running the benchmark's real
persistent data structure under a :class:`CountingPmo`.

A generated thread stream has the paper's structure:

* a sequence of **transactions** (logical operations, where MERR's
  manual attach/detach go);
* inside each, 1..k **code regions** — clusters of PMO accesses the
  TERP compiler wraps in one thread exposure window, separated by
  PMO-free computation;
* PMO-free time between transactions (parsing, networking, logging),
  sized so the exposure rate matches the benchmark.

All randomness is drawn from a seeded ``numpy`` generator, so runs
are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.units import GIB, MIB, us
from repro.sim.events import Burst, Compute, RegionEnd, TxBegin, TxEnd
from repro.workloads.structures.counting import AccessCounts, CountingPmo


@dataclass(frozen=True)
class OpStats:
    """Measured per-operation access statistics."""

    accesses: float
    unique_pages: float
    write_fraction: float

    @classmethod
    def from_counts(cls, samples: List[AccessCounts]) -> "OpStats":
        if not samples:
            return cls(accesses=10.0, unique_pages=1.0, write_fraction=0.5)
        totals = [s.total for s in samples]
        pages = [s.unique_pages for s in samples]
        writes = sum(s.writes for s in samples)
        total = sum(totals)
        return cls(accesses=float(np.mean(totals)),
                   unique_pages=float(np.mean(pages)),
                   write_fraction=writes / total if total else 0.0)


@dataclass(frozen=True)
class WhisperSpec:
    """Shape parameters for one WHISPER benchmark.

    ``window_avg_us``/``window_max_us`` — per-transaction PMO window
    (what MERR's manual insertion exposes; Table III MM columns).
    ``exposure_rate`` — fraction of run time inside those windows.
    ``region_us`` — duration of one access cluster (sets the measured
    TEW; Table III TT's TEW column).
    """

    name: str
    window_avg_us: float
    window_max_us: float
    exposure_rate: float
    region_us: float
    pmo_size: int = GIB
    n_transactions: int = 100_000
    base_cycles_per_access: float = 8.0

    @property
    def pmo_name(self) -> str:
        return self.name

    @property
    def cycle_us(self) -> float:
        """Average full transaction cycle (window + PMO-free work)."""
        return self.window_avg_us / self.exposure_rate

    @property
    def regions_per_tx(self) -> float:
        """How many access clusters fit an average window (>=1)."""
        return max(1.0, self.window_avg_us / (4.0 * self.region_us))


class WhisperBenchmark:
    """One benchmark: a spec plus its real-structure op runner.

    ``setup`` builds the persistent structure on a (counting) PMO and
    returns an ``op(rng)`` callable executing one representative
    operation.  Measurement runs a few hundred ops and summarizes the
    access counts; generation then emits the 100K-transaction stream.
    """

    def __init__(self, spec: WhisperSpec,
                 setup: Callable[[CountingPmo, np.random.Generator],
                                 Callable]) -> None:
        self.spec = spec
        self._setup = setup
        self._op_stats: Optional[OpStats] = None

    # -- measurement ------------------------------------------------------

    def measure(self, *, samples: int = 200, seed: int = 7) -> OpStats:
        """Run real operations and record their access statistics."""
        if self._op_stats is not None:
            return self._op_stats
        from repro.pmo.pmo import Pmo
        rng = np.random.default_rng(seed)
        # A small PMO suffices for measurement; the structures' access
        # complexity does not depend on PMO capacity.
        pmo = CountingPmo(Pmo(1, self.spec.name, 64 * MIB))
        op = self._setup(pmo, rng)
        # Warm up so steady-state (not first-touch) behaviour is
        # measured, then sample.
        for _ in range(50):
            op(rng)
        pmo.counts.reset()
        counts: List[AccessCounts] = []
        for _ in range(samples):
            op(rng)
            counts.append(pmo.counts.reset())
        self._op_stats = OpStats.from_counts(counts)
        return self._op_stats

    # -- generation ----------------------------------------------------------

    def thread_stream(self, *, n_transactions: Optional[int] = None,
                      seed: int = 11) -> Iterator:
        """Yield the work-event stream for one thread."""
        spec = self.spec
        stats = self.measure()
        rng = np.random.default_rng(seed)
        n_txs = n_transactions if n_transactions is not None \
            else spec.n_transactions
        region_ns = us(spec.region_us)
        # Window length distribution: Beta-shaped between ~0 and the
        # observed max, with the observed mean.
        mean_frac = min(0.95, spec.window_avg_us / spec.window_max_us)
        beta_a = 2.0
        beta_b = beta_a * (1.0 - mean_frac) / mean_frac
        # PMO-free time between transactions keeps ER on target.
        outside_mean_ns = us(spec.cycle_us - spec.window_avg_us)
        for _ in range(n_txs):
            window_ns = max(region_ns, int(
                us(spec.window_max_us) * rng.beta(beta_a, beta_b)))
            yield TxBegin.of(spec.pmo_name)
            yield from self._tx_body(window_ns, region_ns, stats, rng)
            yield TxEnd()
            # Gamma-distributed PMO-free gap (mean = outside_mean).
            gap = int(rng.gamma(3.0, outside_mean_ns / 3.0))
            if gap > 0:
                yield Compute(gap)

    def _tx_body(self, window_ns: int, region_ns: int, stats: OpStats,
                 rng: np.random.Generator) -> Iterator:
        """Regions within one transaction window."""
        n_regions = max(1, int(round(window_ns / (4.0 * region_ns))))
        # Inter-region gaps fill the window around the region clusters.
        total_gap = max(0, window_ns - n_regions * region_ns)
        gap_each = total_gap // n_regions if n_regions else 0
        for i in range(n_regions):
            n_accesses = max(1, int(rng.poisson(stats.accesses)))
            yield Burst(self.spec.pmo_name,
                        n_accesses=n_accesses,
                        unique_pages=max(1, int(round(stats.unique_pages))),
                        write_fraction=stats.write_fraction,
                        base_cycles=self.spec.base_cycles_per_access)
            yield Compute(region_ns)
            yield RegionEnd()
            # Non-PMO computation fills the rest of the window; the
            # trailing chunk matters too: the operation's (manual)
            # detach comes after it, so the window spans it.
            if gap_each > 0:
                yield Compute(gap_each)

    def threads(self, num_threads: int = 1, *,
                n_transactions: Optional[int] = None,
                seed: int = 11) -> Dict[int, Iterator]:
        """Thread-id -> stream mapping for the machine."""
        per_thread = (n_transactions if n_transactions is not None
                      else self.spec.n_transactions) // num_threads
        return {tid: self.thread_stream(n_transactions=per_thread,
                                        seed=seed + 1000 * tid)
                for tid in range(num_threads)}

    def pmo_sizes(self) -> Dict[str, int]:
        return {self.spec.pmo_name: self.spec.pmo_size}
