"""The paper's threat model (Section III-B), as checkable structure.

Data-only attacks against PMO contents: the attacker controls local
variables through a memory-safety bug (buffer overflow, format
string) in code that legitimately accesses the PMO, and tries to read
or corrupt PMO data.  The model's assumptions (trusted OS, correct
MMU, trustworthy randomness, no instruction injection) are encoded as
explicit predicates so analyses can state what they rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List


class Assumption(enum.Enum):
    """Trust assumptions the TERP analysis rests on."""

    TRUSTED_OS = "system software (OS) is trusted"
    CORRECT_MMU = "MMU enforces page-table mappings correctly"
    TRUSTED_RNG = "randomization source is trustworthy"
    NO_INSTRUCTION_INJECTION = (
        "attackers cannot inject or reuse TERP instructions (call "
        "gates / binary inspection, e.g. ERIM)")
    CFI_DEPLOYED = "control-flow attacks are mitigated separately"


class AttackClass(enum.Enum):
    """Attack classes discussed in the evaluation (Table V)."""

    STACK_BUFFER_OVERFLOW = "stack buffer overflow"
    HEAP_OVERFLOW = "heap overflow"
    FORMAT_STRING = "format string"
    INTEGER_OVERFLOW = "integer overflow"
    SPECTRE = "speculative side channel"
    MELTDOWN = "meltdown-class"


#: The three PMO data states a thread can observe (Section VII-D).
class PmoState(enum.Enum):
    DETACHED = "detached"
    ATTACHED_NO_PERMISSION = "attached without thread permission"
    ATTACHED_WITH_PERMISSION = "attached with thread permission"


@dataclass(frozen=True)
class ThreatModel:
    """What the attacker can and cannot do."""

    assumptions: FrozenSet[Assumption] = frozenset(Assumption)
    in_scope: FrozenSet[AttackClass] = frozenset({
        AttackClass.STACK_BUFFER_OVERFLOW,
        AttackClass.HEAP_OVERFLOW,
        AttackClass.FORMAT_STRING,
        AttackClass.INTEGER_OVERFLOW,
    })

    def protects_against(self, attack: AttackClass,
                         state: PmoState) -> bool:
        """Can the attack reach PMO data in the given state?

        Section VII-D: in the DETACHED state even attacks exploiting
        virtual-memory implementation flaws (Spectre/Meltdown) fail —
        no mapping exists.  In the two attached states, in-scope
        data-only attacks are *hindered probabilistically* (short
        windows plus randomization), and out-of-scope
        microarchitectural attacks are not blocked.
        """
        if state is PmoState.DETACHED:
            return True
        if attack in (AttackClass.SPECTRE, AttackClass.MELTDOWN):
            return False
        if state is PmoState.ATTACHED_NO_PERMISSION:
            # The MPK permission stops ordinary loads/stores from the
            # compromised thread.
            return True
        return False  # attached-with-permission: the probabilistic case


DEFAULT_THREAT_MODEL = ThreatModel()
