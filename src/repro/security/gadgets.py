"""Gadget census and attack-scenario analysis (Table VI).

A *data-only gadget* is a program point performing an attacker-
influencable read or write (Figure 12's dereference / assignment /
addition lines).  A gadget is only useful against a PMO while the
executing thread can actually touch the PMO:

* under MERR, any gadget executing while the PMO is attached is armed
  — the armed fraction is the exposure rate (ER);
* under TERP, a gadget is armed only inside a thread exposure window
  — the armed fraction is the thread exposure rate (TER).

"Disarmed" percentages in Table VI are therefore 100 - armed.  The
census here derives them from actual simulated runs (the same runs
behind Tables III/IV), and the scenario table reproduces the paper's
three-case analysis of gadget/window relationships.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.sim.stats import RunResult


@dataclass(frozen=True)
class GadgetCensus:
    """Fraction of gadgets armed/disarmed under each scheme."""

    suite: str
    merr_armed_percent: float     # = ER under MERR
    terp_armed_percent: float     # = TER under TERP

    @property
    def merr_disarmed_percent(self) -> float:
        return 100.0 - self.merr_armed_percent

    @property
    def terp_disarmed_percent(self) -> float:
        return 100.0 - self.terp_armed_percent

    @property
    def improvement_factor(self) -> float:
        """How many times fewer gadgets stay armed under TERP."""
        if self.terp_armed_percent == 0:
            return float("inf")
        return self.merr_armed_percent / self.terp_armed_percent


def census_from_runs(suite: str, merr_results: Dict[str, RunResult],
                     terp_results: Dict[str, RunResult]) -> GadgetCensus:
    """Derive the census from per-benchmark MERR and TERP runs.

    Gadgets are uniformly distributed over execution time, so the
    armed fraction equals the time-fraction a random gadget execution
    finds the PMO accessible to its thread.
    """
    merr_armed = _mean([r.er_percent for r in merr_results.values()])
    terp_armed = _mean([r.ter_percent for r in terp_results.values()])
    return GadgetCensus(suite=suite,
                        merr_armed_percent=merr_armed,
                        terp_armed_percent=terp_armed)


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


class GadgetRelation(enum.Enum):
    """Table VI columns: gadget position vs attach-detach pairs."""

    NO_OVERLAP = "no overlap"
    WITHIN_PAIR = "gadgets within an attach-detach pair"
    CONTAINS_PAIR = "gadgets include an attach-detach pair"


class AttackCapability(enum.Enum):
    """Table VI rows."""

    SINGLE_READ_WRITE = "one arbitrary read or write"
    GADGET_LOOP = "an infinite loop with several arbitrary reads/writes"


@dataclass(frozen=True)
class ScenarioVerdict:
    relation: GadgetRelation
    capability: AttackCapability
    verdict: str
    quantitative: str = ""


def scenario_table(census_whisper: GadgetCensus,
                   census_spec: GadgetCensus,
                   *, probe_success_percent: float = 0.01
                   ) -> List[ScenarioVerdict]:
    """The paper's Table VI, with the measured census plugged in."""
    return [
        ScenarioVerdict(
            GadgetRelation.NO_OVERLAP, AttackCapability.SINGLE_READ_WRITE,
            "prevented by the permission",
        ),
        ScenarioVerdict(
            GadgetRelation.WITHIN_PAIR, AttackCapability.SINGLE_READ_WRITE,
            "hindered by EW and address randomization",
        ),
        ScenarioVerdict(
            GadgetRelation.CONTAINS_PAIR,
            AttackCapability.SINGLE_READ_WRITE,
            "hindered by EW and address randomization",
        ),
        ScenarioVerdict(
            GadgetRelation.NO_OVERLAP, AttackCapability.GADGET_LOOP,
            "gadgets disarmed outside thread windows",
            quantitative=(
                f"prevent {census_whisper.terp_disarmed_percent:.1f}% "
                f"gadgets in WHISPER; "
                f"{census_spec.terp_disarmed_percent:.2f}% in SPEC"),
        ),
        ScenarioVerdict(
            GadgetRelation.WITHIN_PAIR, AttackCapability.GADGET_LOOP,
            "interactive attacks impossible (network latency >> EW); "
            "non-interactive attacks need complicated mechanisms",
            quantitative=(f"state-of-art probing: "
                          f"{probe_success_percent}% chance per EW"),
        ),
        ScenarioVerdict(
            GadgetRelation.CONTAINS_PAIR, AttackCapability.GADGET_LOOP,
            "accumulated probability, but each session limited to EW",
        ),
    ]
