"""Security analyses: threat model, dead times, probabilities, attacks."""

from repro.security.attacks import (
    AttackConfig, AttackOutcome, compare_protections, DataOnlyAttack,
    Protection)
from repro.security.dead_time import (
    DeadTimeDistribution, DeadTimeTracker)
from repro.security.gadgets import census_from_runs, GadgetCensus
from repro.security.probability import (
    AttackScenario, merr_success_percent, placement_entropy_bits,
    reduction_factor, terp_success_percent)
from repro.security.threat_model import (
    Assumption, AttackClass, DEFAULT_THREAT_MODEL, PmoState,
    ThreatModel)

__all__ = ["AttackConfig", "AttackOutcome", "compare_protections",
           "DataOnlyAttack", "Protection", "DeadTimeDistribution",
           "DeadTimeTracker", "census_from_runs", "GadgetCensus",
           "AttackScenario", "merr_success_percent",
           "placement_entropy_bits", "reduction_factor",
           "terp_success_percent", "Assumption", "AttackClass",
           "DEFAULT_THREAT_MODEL", "PmoState", "ThreatModel"]
