"""Object dead-time analysis (Section VII-A, Figure 8).

The attack surface for persistent corruption of a heap object is its
*dead time*: the window from the victim's **last write** to the
object until its **deallocation** — a corruption landed there
persists (earlier corruption would be overwritten by the victim).

The paper measures dead times over eight SPEC 2017 benchmarks and
five Heap Layers allocation-heavy benchmarks and finds that 95% of
dead times are >= 2µs, motivating the 2µs TEW target.

Here the dead times are *measured* from allocation traces produced by
:mod:`repro.workloads.heaplayers` — real alloc/write/free sequences
over the PMO heap — and summarized into the paper's histogram bins.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.units import ns_to_us, us

#: Figure 8's histogram bin upper edges, in microseconds.
FIG8_BIN_EDGES_US = [
    0.2, 0.4, 0.6, 0.8, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
    128.0, 256.0, 512.0, 1024.0, 4096.0, 16384.0, 65536.0,
]


@dataclass
class ObjectLifetime:
    """One tracked heap object's events (times in ns)."""

    alloc_ns: int
    last_write_ns: int
    free_ns: int

    @property
    def dead_time_ns(self) -> int:
        return self.free_ns - self.last_write_ns


class DeadTimeTracker:
    """Collects object lifetimes from an allocation trace."""

    def __init__(self) -> None:
        self._live: Dict[int, ObjectLifetime] = {}
        self.completed: List[ObjectLifetime] = []

    def on_alloc(self, obj_id: int, now_ns: int) -> None:
        self._live[obj_id] = ObjectLifetime(now_ns, now_ns, -1)

    def on_write(self, obj_id: int, now_ns: int) -> None:
        obj = self._live.get(obj_id)
        if obj is not None:
            obj.last_write_ns = now_ns

    def on_free(self, obj_id: int, now_ns: int) -> None:
        obj = self._live.pop(obj_id, None)
        if obj is not None:
            obj.free_ns = now_ns
            self.completed.append(obj)

    def dead_times_us(self) -> np.ndarray:
        return np.array([ns_to_us(o.dead_time_ns) for o in self.completed])


@dataclass
class DeadTimeDistribution:
    """Figure 8: the binned distribution plus the headline statistic."""

    bin_edges_us: List[float]
    percentages: List[float]
    samples: int

    @classmethod
    def from_dead_times(cls, dead_times_us: Sequence[float],
                        edges: Sequence[float] = FIG8_BIN_EDGES_US
                        ) -> "DeadTimeDistribution":
        times = np.asarray(list(dead_times_us), dtype=float)
        if times.size == 0:
            raise ValueError("no dead-time samples")
        counts = np.zeros(len(edges) + 1)
        for t in times:
            counts[bisect_right(list(edges), t)] += 1
        percentages = (100.0 * counts / times.size).tolist()
        return cls(bin_edges_us=list(edges), percentages=percentages,
                   samples=int(times.size))

    def fraction_at_least(self, threshold_us: float) -> float:
        """P(dead time >= threshold) — the attack-surface-reduction
        number: at 2µs the paper reports 95%.

        Bin ``i`` covers ``(edge[i-1], edge[i]]``; the first bin that
        only holds values above the threshold starts at
        ``bisect_right(edges, threshold)``.
        """
        idx = bisect_right(self.bin_edges_us, threshold_us)
        return sum(self.percentages[idx:]) / 100.0

    def surface_reduction_at(self, tew_us: float) -> float:
        """Choosing TEW = ``tew_us`` removes this fraction of the
        dead-time attack surface."""
        return self.fraction_at_least(tew_us)

    def render(self) -> str:
        lines = ["dead-time distribution "
                 f"({self.samples} objects):"]
        prev = 0.0
        for edge, pct in zip(self.bin_edges_us, self.percentages):
            bar = "#" * int(round(pct))
            lines.append(f"  {prev:8.1f}-{edge:8.1f}us {pct:5.1f}% {bar}")
            prev = edge
        lines.append(f"  >{prev:8.1f}us          "
                     f"{self.percentages[-1]:5.1f}%")
        return "\n".join(lines)
