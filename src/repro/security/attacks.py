"""Data-only attack case study (Section VII-D, Figure 12).

A concrete, runnable reproduction of the paper's FTP-server example:
the victim program keeps a linked list in a PMO; a buffer overflow in
``readData`` lets the attacker control local variables (``type``,
``size``, ``srv``, and the loop counter), turning three innocent
lines into *data-only gadgets*:

* ``srv->typ = *type``       — attacker-controlled assignment;
* ``*size = *(srv->cur_max)``— attacker-controlled dereference;
* ``srv->total += *size``    — attacker-controlled addition;

chained by the request loop (a *gadget dispatcher*) to execute the
attack goal of Figure 12(b): add a chosen value to every node of the
victim list.

:class:`DataOnlyAttack` replays that chain against the same victim
structure under three protection levels — none, MERR (process-wide
windows + randomization), TERP (thread windows + randomization) — and
reports how far the attacker gets.  The gadget can only touch the PMO
when the executing thread can (the protection's exposure schedule),
and learned addresses die at every randomization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.units import MIB, us
from repro.pmo.object_id import Oid
from repro.pmo.pmo import Pmo


class Protection(enum.Enum):
    NONE = "none"
    MERR = "merr"
    TERP = "terp"


@dataclass
class AttackConfig:
    protection: Protection
    ew_us: float = 40.0
    #: fraction of time the PMO is attached (exposure rate)
    exposure_rate: float = 0.5
    #: fraction of the EW during which the *vulnerable thread* holds
    #: permission (TERP only; = TER/ER)
    thread_fraction: float = 1.0 / 30.0
    #: time the attacker needs per gadget round
    round_us: float = 1.0
    #: entropy of the PMO placement, in bits (scaled down from 18 so
    #: the demo terminates; the probability model scales linearly)
    entropy_bits: int = 10
    #: attacker budget
    max_rounds: int = 200_000
    #: interactive attacks observe probe results over the network;
    #: each result arrives one RTT later (Table VI: "network
    #: latencies (ms level) are much larger than EW (40us)")
    interactive: bool = False
    network_rtt_us: float = 1_000.0


@dataclass
class AttackOutcome:
    corrupted_nodes: int
    total_nodes: int
    rounds_used: int
    faults: int
    stale_addresses: int
    reprobes: int

    @property
    def succeeded(self) -> bool:
        return self.corrupted_nodes == self.total_nodes

    @property
    def progress(self) -> float:
        return self.corrupted_nodes / self.total_nodes


class VictimList:
    """Figure 12(b)'s structure: ``struct Obj {Obj *next; uint prop;}``
    as a real persistent linked list on a PMO."""

    NODE_SIZE = 16  # next oid (8) + prop (8)

    def __init__(self, pmo: Pmo, n_nodes: int) -> None:
        self.pmo = pmo
        self.nodes: List[Oid] = []
        prev = Oid.NULL
        for i in range(n_nodes):
            oid = pmo.pmalloc(self.NODE_SIZE)
            pmo.write_u64(oid.offset, prev.pack())
            pmo.write_u64(oid.offset + 8, 100 + i)   # prop
            prev = oid
            self.nodes.append(oid)
        pmo.root_oid = prev  # head

    def props(self) -> List[int]:
        return [self.pmo.read_u64(oid.offset + 8) for oid in self.nodes]


class DataOnlyAttack:
    """Replays the gadget chain under a protection schedule."""

    def __init__(self, config: AttackConfig, *, n_nodes: int = 16,
                 seed: int = 99) -> None:
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.pmo = Pmo(1, "victim", 4 * MIB)
        self.victim = VictimList(self.pmo, n_nodes)
        #: current placement epoch; bumps on every randomization, and
        #: any address learned in an older epoch is stale.
        self._epoch = 0
        self._known_epoch: Optional[int] = None

    # -- protection schedule ------------------------------------------------

    def _pmo_accessible(self, now_us: float) -> bool:
        """Is the PMO attached at ``now_us`` (MERR/TERP schedule)?"""
        if self.config.protection is Protection.NONE:
            return True
        cycle = self.config.ew_us / self.config.exposure_rate
        return (now_us % cycle) < self.config.ew_us

    def _thread_can_access(self, now_us: float) -> bool:
        """Does the compromised thread hold permission at ``now_us``?"""
        if not self._pmo_accessible(now_us):
            return False
        if self.config.protection is not Protection.TERP:
            return True
        # Thread windows are short slices at the start of each EW.
        cycle = self.config.ew_us / self.config.exposure_rate
        offset = now_us % cycle
        return offset < self.config.ew_us * self.config.thread_fraction

    def _current_epoch(self, now_us: float) -> int:
        """Randomization epoch: the placement changes every EW."""
        if self.config.protection is Protection.NONE:
            return 0
        cycle = self.config.ew_us / self.config.exposure_rate
        return int(now_us // cycle)

    # -- the attack ---------------------------------------------------------------

    def run(self) -> AttackOutcome:
        cfg = self.config
        corrupted = 0
        faults = stale = reprobes = 0
        now_us = 0.0
        rounds = 0
        value = 7777  # the attacker's chosen increment
        while corrupted < len(self.victim.nodes) and \
                rounds < cfg.max_rounds:
            rounds += 1
            now_us += cfg.round_us
            epoch = self._current_epoch(now_us)
            if not self._thread_can_access(now_us):
                # The gadget fires but the load faults: under TERP
                # this is also a detectable signal.
                faults += 1
                continue
            if self._known_epoch != epoch:
                # Learned base address died at randomization; one
                # probe round per attempt, success 2^-entropy.
                stale += 1
                if self.rng.random() < 2.0 ** -cfg.entropy_bits:
                    if cfg.interactive:
                        # The probe's answer travels over the network:
                        # it describes the placement of the epoch the
                        # probe ran in, observed one RTT later.
                        observed_at = now_us + cfg.network_rtt_us
                        if self._current_epoch(observed_at) == epoch:
                            self._known_epoch = epoch
                            reprobes += 1
                        # else: the answer is already stale on arrival
                    else:
                        self._known_epoch = epoch
                        reprobes += 1
                continue
            # Address known and permission held: the odd/even-round
            # gadget pair (Figure 12c) advances one node.
            node = self.victim.nodes[corrupted]
            prop = self.pmo.read_u64(node.offset + 8)
            self.pmo.write_u64(node.offset + 8,
                               (prop + value) & ((1 << 64) - 1))
            corrupted += 1
        return AttackOutcome(corrupted_nodes=corrupted,
                             total_nodes=len(self.victim.nodes),
                             rounds_used=rounds,
                             faults=faults,
                             stale_addresses=stale,
                             reprobes=reprobes)


def compare_protections(*, n_nodes: int = 16, seed: int = 99,
                        max_rounds: int = 100_000) -> dict:
    """Run the same attack under none/MERR/TERP; the case-study data."""
    results = {}
    for protection in Protection:
        config = AttackConfig(protection=protection,
                              max_rounds=max_rounds)
        attack = DataOnlyAttack(config, n_nodes=n_nodes, seed=seed)
        results[protection.value] = attack.run()
    return results
