"""Attack success probability (Section VII-D, Table V).

The paper's quantitative comparison follows the standard
effectiveness analysis of randomization defenses: an attacker who
needs ``x`` µs per probe attacks a PMO whose placement carries
``entropy_bits`` of entropy (18 bits for a 1GB PMO in a 1GB-aligned
256K-slot region).  Within one exposure window of length W the
attacker completes ``W/x`` probes over ``2^entropy`` equally likely
positions, so the per-window success probability is::

    P(success) = (W / x) / 2^entropy

Randomization at window boundaries makes windows independent.  Under
TERP, a compromised thread can probe only while *it* holds thread
permission — the thread exposure rate slice of the window — which is
the paper's 30x reduction: probing capacity shrinks from the full EW
to ``TER/ER`` of it.

The module reproduces Table V exactly and generalizes it (arbitrary
window sizes, entropies, attack times), and backs it with a Monte
Carlo probe simulator for cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.units import GIB


def placement_entropy_bits(pmo_size: int = GIB,
                           region_size: int = 256 * 1024 * GIB) -> int:
    """Entropy of a randomized, alignment-constrained placement.

    A PMO's embedded subtree must land on a slot aligned to its own
    span; a 1GB PMO in a 256TB region has 256K slots = 18 bits.
    """
    slots = region_size // max(pmo_size, 1)
    if slots <= 1:
        return 0
    return int(np.log2(slots))


@dataclass(frozen=True)
class AttackScenario:
    """One column of Table V."""

    attack_time_us: float            # x: time per probe/attempt
    window_us: float = 40.0          # EW (MERR) or EW under TERP
    entropy_bits: int = 18           # 1GB PMO
    #: fraction of the window during which the attacking thread holds
    #: access (1.0 for MERR; TER/ER for TERP's thread permissions)
    access_fraction: float = 1.0

    @property
    def probes_per_window(self) -> float:
        usable = self.window_us * self.access_fraction
        return usable / self.attack_time_us

    @property
    def success_probability(self) -> float:
        """Per-window success probability (a fraction, not %)."""
        p = self.probes_per_window / (2 ** self.entropy_bits)
        return min(1.0, p)

    @property
    def success_percent(self) -> float:
        return 100.0 * self.success_probability


def merr_success_percent(attack_time_us: float, *,
                         ew_us: float = 40.0,
                         entropy_bits: int = 18) -> float:
    """Table V, MERR column: (0.015/x)% for a 40us EW, 18-bit PMO."""
    return AttackScenario(attack_time_us, window_us=ew_us,
                          entropy_bits=entropy_bits).success_percent


def terp_success_percent(attack_time_us: float, *,
                         ew_us: float = 40.0,
                         tew_us: float = 2.0,
                         access_fraction: float = 1.0 / 30.0,
                         entropy_bits: int = 18) -> Optional[float]:
    """Table V, TERP column: (0.0005/x)%, and None when the attack
    cannot run at all (each probe must fit inside a thread window).
    """
    if attack_time_us > tew_us:
        return None   # the probe needs permission longer than any TEW
    return AttackScenario(attack_time_us, window_us=ew_us,
                          entropy_bits=entropy_bits,
                          access_fraction=access_fraction
                          ).success_percent


def reduction_factor(attack_time_us: float = 1.0, *,
                     access_fraction: float = 1.0 / 30.0) -> float:
    """How much smaller TERP's success probability is vs MERR's.

    The paper reports 30x from the thread-permission restriction (the
    malicious thread holds access ~3.4% of the EW in WHISPER).
    """
    merr = merr_success_percent(attack_time_us)
    terp = terp_success_percent(attack_time_us,
                                access_fraction=access_fraction)
    if terp is None or terp == 0.0:
        return float("inf")
    return merr / terp


def simulate_probing(attack_time_us: float, *, window_us: float = 40.0,
                     entropy_bits: int = 18,
                     access_fraction: float = 1.0,
                     windows: int = 200_000,
                     seed: int = 1) -> float:
    """Monte Carlo cross-check of the analytic model.

    Each window the attacker probes distinct positions; success if the
    target position is among them.  Returns the per-window success
    rate in percent.
    """
    rng = np.random.default_rng(seed)
    slots = 2 ** entropy_bits
    probes = int(window_us * access_fraction / attack_time_us)
    if probes <= 0:
        return 0.0
    # The target is uniform per window (re-randomized); probing
    # distinct positions gives P = probes/slots exactly, sampled here.
    hits = rng.integers(0, slots, size=windows) < probes
    return 100.0 * float(np.mean(hits))


def table5_rows(*, ew_us: float = 40.0, tew_us: float = 2.0,
                access_fraction: float = 1.0 / 30.0) -> Dict[str, Dict]:
    """The full Table V, for each attack-time column."""
    rows = {}
    for x_us, label in [(None, "x us"), (1.0, "1us"), (0.1, "0.1us")]:
        if x_us is None:
            rows[label] = {
                "merr": "0.015/x", "terp": "0.0005/x",
            }
        else:
            rows[label] = {
                "merr": merr_success_percent(x_us, ew_us=ew_us),
                "terp": terp_success_percent(
                    x_us, ew_us=ew_us, tew_us=tew_us,
                    access_fraction=access_fraction),
            }
    return rows
